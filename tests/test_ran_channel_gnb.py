"""Tests for the channel model, gNB layer, scheduler and access/handover."""

import numpy as np
import pytest

from repro import units
from repro.geo import CellId, GeoPoint, Grid
from repro.ran import (
    AccessProcedure,
    CellLoadModel,
    ChannelModel,
    GNodeB,
    HandoverModel,
    RadioConfig,
    RadioNetwork,
    SchedulerPolicy,
)
from repro.geo.mobility import MobilitySample
from repro.sim import RngRegistry

CENTRE = GeoPoint(46.62, 14.30)


@pytest.fixture
def channel():
    return ChannelModel(3.5e9, seed=7)


@pytest.fixture
def rng():
    return RngRegistry(5).stream("ran")


# ---------------------------------------------------------------------------
# ChannelModel
# ---------------------------------------------------------------------------

def test_pathloss_increases_with_distance(channel):
    assert channel.pathloss_db(100.0) < channel.pathloss_db(1000.0)
    assert channel.pathloss_db(1000.0) < channel.pathloss_db(5000.0)


def test_pathloss_close_in_floor(channel):
    assert channel.pathloss_db(1.0) == channel.pathloss_db(10.0)
    with pytest.raises(ValueError):
        channel.pathloss_db(-1.0)


def test_pathloss_increases_with_frequency():
    low = ChannelModel(3.5e9)
    high = ChannelModel(28e9)
    assert high.pathloss_db(500.0) > low.pathloss_db(500.0)


def test_shadowing_is_spatially_consistent(channel):
    spot = GeoPoint(46.6201, 14.3002)
    nearby = GeoPoint(46.62012, 14.30022)  # within the same ~10 m tile
    far = GeoPoint(46.63, 14.32)
    assert channel.shadowing_db(spot) == channel.shadowing_db(spot)
    assert channel.shadowing_db(spot) == channel.shadowing_db(nearby)
    assert channel.shadowing_db(spot) != channel.shadowing_db(far)


def test_sinr_decreases_with_distance_and_load(channel):
    spot = GeoPoint(46.62, 14.30)
    near = channel.sinr_db(200.0, spot)
    far = channel.sinr_db(2000.0, spot)
    assert near > far
    assert channel.sinr_db(200.0, spot, load=0.9) < near
    with pytest.raises(ValueError):
        channel.sinr_db(200.0, spot, load=1.5)


def test_bler_waterfall(channel):
    assert channel.bler(8.0) == pytest.approx(0.1, rel=0.01)  # operating pt
    assert channel.bler(25.0) < 0.001
    assert channel.bler(-10.0) > 0.9
    with pytest.raises(ValueError):
        channel.bler(10.0, target_bler=0.0)


def test_spectral_efficiency_caps(channel):
    assert channel.spectral_efficiency(100.0) == pytest.approx(7.4)
    assert channel.spectral_efficiency(0.0) == pytest.approx(1.0)


def test_achievable_rate_scales_with_share(channel):
    full = channel.achievable_rate_bps(15.0)
    half = channel.achievable_rate_bps(15.0, bandwidth_share=0.5)
    assert half == pytest.approx(full / 2)
    with pytest.raises(ValueError):
        channel.achievable_rate_bps(15.0, bandwidth_share=0.0)


def test_channel_validation():
    with pytest.raises(ValueError):
        ChannelModel(0.0)
    with pytest.raises(ValueError):
        ChannelModel(1e9, bandwidth_hz=-1)
    with pytest.raises(ValueError):
        ChannelModel(1e9, shadowing_sigma_db=-2)


# ---------------------------------------------------------------------------
# GNodeB / RadioNetwork
# ---------------------------------------------------------------------------

def make_network(channel):
    cfg = RadioConfig.nr_5g()
    west = GNodeB("gnb-west", GeoPoint(46.62, 14.28), cfg)
    east = GNodeB("gnb-east", GeoPoint(46.62, 14.32), cfg)
    return RadioNetwork(channel, [west, east])


def test_serving_picks_nearest_site(channel):
    net = make_network(channel)
    gnb, sinr = net.serving(GeoPoint(46.62, 14.281))
    assert gnb.name == "gnb-west"
    gnb, _ = net.serving(GeoPoint(46.62, 14.319))
    assert gnb.name == "gnb-east"


def test_load_aware_serving_can_switch(channel):
    net = make_network(channel)
    midpoint = GeoPoint(46.62, 14.2999)   # slightly west of centre
    gnb, _ = net.serving(midpoint)
    assert gnb.name == "gnb-west"
    net.gnb("gnb-west").load = 0.95
    gnb, _ = net.serving(midpoint)
    assert gnb.name == "gnb-east"
    gnb, _ = net.serving(midpoint, load_aware=False)
    assert gnb.name == "gnb-west"


def test_network_validation(channel):
    net = make_network(channel)
    with pytest.raises(ValueError):
        net.add(GNodeB("gnb-west", CENTRE, RadioConfig.nr_5g()))
    with pytest.raises(KeyError):
        net.gnb("nope")
    with pytest.raises(RuntimeError):
        RadioNetwork(channel).serving(CENTRE)
    with pytest.raises(ValueError):
        GNodeB("x", CENTRE, RadioConfig.nr_5g(), load=1.0)
    with pytest.raises(ValueError):
        GNodeB("", CENTRE, RadioConfig.nr_5g())


def test_air_interface_accessor(channel):
    net = make_network(channel)
    air = net.air_interface("gnb-west")
    assert air.config is net.gnb("gnb-west").config


def test_coverage_sinr(channel):
    net = make_network(channel)
    sinrs = net.coverage_sinr([GeoPoint(46.62, 14.28), GeoPoint(46.62, 14.40)])
    assert sinrs[0] > sinrs[1]


# ---------------------------------------------------------------------------
# CellLoadModel (scalability, Sec. II-C)
# ---------------------------------------------------------------------------

def test_utilisation_grows_with_population(channel):
    model = CellLoadModel(channel)
    rate = units.mbps(0.1)
    u_small = model.utilisation(100, rate)
    u_big = model.utilisation(5000, rate)
    assert u_small < u_big <= 0.99


def test_pf_beats_rr_capacity(channel):
    pf = CellLoadModel(channel, policy=SchedulerPolicy.PROPORTIONAL_FAIR)
    rr = CellLoadModel(channel, policy=SchedulerPolicy.ROUND_ROBIN)
    assert pf.cell_capacity_bps(64) > rr.cell_capacity_bps(64)
    assert pf.cell_capacity_bps(1) == rr.cell_capacity_bps(1)


def test_max_supported_users_consistent(channel):
    model = CellLoadModel(channel)
    rate = units.mbps(0.05)
    n = model.max_supported_users(rate, max_utilisation=0.9)
    assert model.utilisation(n, rate) <= 0.9
    assert model.utilisation(n + 1, rate) > 0.9


def test_load_model_validation(channel):
    model = CellLoadModel(channel)
    with pytest.raises(ValueError):
        model.utilisation(-1, 1e6)
    with pytest.raises(ValueError):
        model.utilisation(10, -1e6)
    with pytest.raises(ValueError):
        model.cell_capacity_bps(0)
    with pytest.raises(ValueError):
        model.max_supported_users(0.0)
    assert model.utilisation(0, 1e6) == 0.0


# ---------------------------------------------------------------------------
# AccessProcedure
# ---------------------------------------------------------------------------

def test_attach_latency_magnitude_5g(rng):
    proc = AccessProcedure(RadioConfig.nr_5g())
    samples = [proc.sample_attach(rng) for _ in range(300)]
    mean = np.mean(samples)
    assert units.ms(5.0) < mean < units.ms(30.0)


def test_attach_contention_increases_latency(rng):
    proc = AccessProcedure(RadioConfig.nr_5g())
    assert proc.mean_attach(contenders=40) > proc.mean_attach(contenders=1)


def test_collision_probability():
    proc = AccessProcedure(RadioConfig.nr_5g(), n_preambles=54)
    assert proc.collision_probability(1) == 0.0
    assert 0.0 < proc.collision_probability(10) < \
        proc.collision_probability(50) < 1.0
    with pytest.raises(ValueError):
        proc.collision_probability(-1)


def test_attach_gives_up_under_extreme_contention(rng):
    proc = AccessProcedure(RadioConfig.nr_5g(), n_preambles=2,
                           max_attempts=3)
    with pytest.raises(RuntimeError):
        for _ in range(200):    # overwhelmingly likely to hit the budget
            proc.sample_attach(rng, contenders=500)


def test_access_validation():
    with pytest.raises(ValueError):
        AccessProcedure(RadioConfig.nr_5g(), prach_period_s=0.0)
    with pytest.raises(ValueError):
        AccessProcedure(RadioConfig.nr_5g(), n_preambles=0)


# ---------------------------------------------------------------------------
# HandoverModel
# ---------------------------------------------------------------------------

def drive_east(grid, times=60):
    """Straight west-to-east trace through both coverage areas."""
    samples = []
    for i in range(times):
        pos = GeoPoint(46.62, 14.27 + i * 0.0012)
        samples.append(MobilitySample(time=float(i), position=pos,
                                      cell=grid.locate(pos)))
    return samples


def test_handover_triggers_on_crossing(channel, rng):
    net = make_network(channel)
    grid = Grid(GeoPoint(46.653, 14.255), cols=6, rows=7)
    model = HandoverModel(net, time_to_trigger_s=1.0)
    events = model.walk(drive_east(grid), rng)
    assert len(events) >= 1
    assert events[0].source == "gnb-west"
    assert events[0].target == "gnb-east"


def test_handover_interruption_by_generation(channel, rng):
    net = make_network(channel)
    model = HandoverModel(net)
    gnb5 = net.gnb("gnb-east")
    assert model.interruption_for(gnb5) == pytest.approx(45e-3)
    gnb6 = GNodeB("gnb-6g", CENTRE, RadioConfig.nr_6g())
    assert model.interruption_for(gnb6) == pytest.approx(0.5e-3)
    sampled = model.sample_interruption(gnb5, rng)
    assert 0.7 * 45e-3 <= sampled <= 1.3 * 45e-3


def test_handover_hysteresis_blocks_marginal_switch(channel, rng):
    net = make_network(channel)
    grid = Grid(GeoPoint(46.653, 14.255), cols=6, rows=7)
    tight = HandoverModel(net, a3_offset_db=0.5, time_to_trigger_s=1.0)
    loose = HandoverModel(net, a3_offset_db=30.0, time_to_trigger_s=1.0)
    assert len(loose.walk(drive_east(grid), rng)) <= \
        len(tight.walk(drive_east(grid), rng))


def test_handover_total_interruption(channel, rng):
    net = make_network(channel)
    grid = Grid(GeoPoint(46.653, 14.255), cols=6, rows=7)
    model = HandoverModel(net, time_to_trigger_s=1.0)
    events = model.walk(drive_east(grid), rng)
    assert model.total_interruption(events) == pytest.approx(
        sum(e.interruption_s for e in events))


def test_handover_validation(channel):
    net = make_network(channel)
    with pytest.raises(ValueError):
        HandoverModel(net, a3_offset_db=-1.0)
    with pytest.raises(ValueError):
        HandoverModel(net, interruption_jitter=1.0)


# ---------------------------------------------------------------------------
# batch link budget — the measurement kernel's bitwise contracts
# ---------------------------------------------------------------------------

def memo_size(channel):
    # The memo is guarded_by(_shadow_lock); peek under the lock so the
    # sync watchdog (REPRO_SYNC_ASSERT=1) stays quiet.
    with channel._shadow_lock:
        return len(channel._shadow_cache)


def test_shadowing_memo_caches_per_tile(channel):
    spot = GeoPoint(46.6201, 14.3002)
    assert memo_size(channel) == 0
    first = channel.shadowing_db(spot)
    assert memo_size(channel) == 1
    assert channel.shadowing_db(spot) == first
    assert memo_size(channel) == 1
    channel.shadowing_db(GeoPoint(46.63, 14.32))
    assert memo_size(channel) == 2


def test_shadowing_memo_is_bounded_lru(channel, monkeypatch):
    """The memo evicts least-recently-used tiles at the capacity cap —
    values stay bit-identical (the draw is pure), only re-derivation
    cost returns."""
    monkeypatch.setattr(ChannelModel, "SHADOW_CACHE_CAPACITY", 3)
    spots = [GeoPoint(46.62 + 0.01 * i, 14.30) for i in range(5)]
    values = [channel.shadowing_db(s) for s in spots]
    assert memo_size(channel) == 3

    # Keeping one tile hot makes it survive further insertions...
    assert channel.shadowing_db(spots[4]) == values[4]
    channel.shadowing_db(GeoPoint(46.9, 14.9))
    channel.shadowing_db(GeoPoint(46.91, 14.9))
    assert channel.shadowing_db(spots[4]) == values[4]
    # ...and evicted tiles re-derive to the exact same draw.
    for spot, value in zip(spots, values):
        assert channel.shadowing_db(spot) == value
    assert memo_size(channel) == 3


def test_shadowing_memo_matches_fresh_instance(channel):
    """The memoized draw equals an uncached model's draw."""
    fresh = ChannelModel(3.5e9, seed=7)
    spots = [GeoPoint(46.62 + 0.001 * i, 14.30 + 0.0007 * i)
             for i in range(20)]
    for spot in spots:
        assert channel.shadowing_db(spot) == fresh.shadowing_db(spot)
    batch = channel.shadowing_db_many(spots)
    for value, spot in zip(batch, spots):
        assert value == fresh.shadowing_db(spot)


def test_pathloss_many_bitwise_equals_scalar(channel):
    rng = np.random.default_rng(11)
    distances = np.concatenate([
        rng.uniform(0.0, 20e3, 500), [0.0, 5.0, 10.0, 10.0001]])
    batch = channel.pathloss_db_many(distances)
    for d, value in zip(distances, batch):
        assert value == channel.pathloss_db(float(d))
    with pytest.raises(ValueError):
        channel.pathloss_db_many(np.array([-1.0]))


def test_sinr_grid_bitwise_equals_scalar(channel):
    positions = [GeoPoint(46.62 + 0.002 * i, 14.28 + 0.003 * i)
                 for i in range(8)]
    sites = [GeoPoint(46.62, 14.28), GeoPoint(46.62, 14.32),
             GeoPoint(46.64, 14.30)]
    loads = [0.0, 0.4, 0.85]
    distances = np.array([[s.distance_to(p) for p in positions]
                          for s in sites])
    grid = channel.sinr_db_grid(distances, positions, loads)
    assert grid.shape == (3, 8)
    for i, (site, load) in enumerate(zip(sites, loads)):
        for j, pos in enumerate(positions):
            scalar = channel.sinr_db(site.distance_to(pos), pos, load=load)
            assert grid[i, j] == scalar
    with pytest.raises(ValueError):
        channel.sinr_db_grid(distances, positions, [0.0, 1.5, 0.0])


def test_serving_many_bitwise_equals_scalar(channel):
    net = make_network(channel)
    net.gnb("gnb-east").load = 0.5
    rng = np.random.default_rng(3)
    positions = [GeoPoint(46.60 + float(dlat), 14.26 + float(dlon))
                 for dlat, dlon in zip(rng.uniform(0, 0.04, 40),
                                       rng.uniform(0, 0.08, 40))]
    for load_aware in (True, False):
        batch = net.serving_many(positions, load_aware=load_aware)
        for pos, (gnb, sinr) in zip(positions, batch):
            want_gnb, want_sinr = net.serving(pos, load_aware=load_aware)
            assert gnb is want_gnb
            assert sinr == want_sinr


def test_serving_many_edge_cases(channel):
    net = make_network(channel)
    assert net.serving_many([]) == []
    with pytest.raises(RuntimeError):
        RadioNetwork(channel).serving_many([CENTRE])
