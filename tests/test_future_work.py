"""Tests for the future-work studies (Section VI outlook)."""

import numpy as np
import pytest

from repro import units
from repro.apps import FederatedConfig, FederatedRoundModel
from repro.core import (
    FederatedEdgeStudy,
    PredictiveSlicingStudy,
    SixGUpgradeStudy,
)
from repro.ran import (
    DIURNAL_URBAN_PROFILE,
    EnergyModel,
    RadioConfig,
    SitePowerModel,
)


# ---------------------------------------------------------------------------
# 6G upgrade study
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def upgrade_reports():
    return SixGUpgradeStudy(seed=42, mean_positions_per_cell=2.0).run()


def test_upgrade_arms_are_ordered(upgrade_reports):
    """Each remedy helps; the combination dominates."""
    r = upgrade_reports
    baseline = r["5G (measured)"].mobile_mean_s
    edge = r["5G + edge breakout"].mobile_mean_s
    sixg = r["6G radio, core unchanged"].mobile_mean_s
    both = r["6G + edge breakout"].mobile_mean_s
    assert edge < baseline
    assert sixg < baseline
    assert both < min(edge, sixg)


def test_only_upgraded_arms_meet_the_ar_budget(upgrade_reports):
    study = SixGUpgradeStudy
    assert not study.meets_requirement(upgrade_reports["5G (measured)"])
    assert study.meets_requirement(
        upgrade_reports["6G + edge breakout"])


def test_6g_with_edge_beats_wired(upgrade_reports):
    """The paper's aim: 'sub-1 ms latencies to achieve competitiveness
    with wired networks'.  The upgraded mobile field undercuts the
    wired baseline."""
    report = upgrade_reports["6G + edge breakout"]
    assert report.mobile_mean_s < report.wired_mean_s
    assert report.mobile_mean_s < units.ms(3.0)


def test_edge_breakout_alone_does_not_fix_the_radio(upgrade_reports):
    """Edge breakout removes the wired detour, but the 5G air interface
    plus loaded-cell buffering still dominates the budget."""
    report = upgrade_reports["5G + edge breakout"]
    assert report.mobile_mean_s > units.ms(20.0)


def test_default_scenario_untouched_by_new_parameters():
    from repro.core import KlagenfurtScenario
    sc = KlagenfurtScenario(seed=42)
    assert sc.campaign_config.default_gateway == "vienna"
    assert sc.radio_config.generation.value == "5g"


# ---------------------------------------------------------------------------
# Federated learning at the edge
# ---------------------------------------------------------------------------

def test_fl_config_validation():
    with pytest.raises(ValueError):
        FederatedConfig(model_size_bits=0.0)
    with pytest.raises(ValueError):
        FederatedConfig(clients_per_round=0)
    with pytest.raises(ValueError):
        FederatedConfig(protocol_rtts=0)


def test_fl_round_model_validation():
    cfg = FederatedConfig()
    with pytest.raises(ValueError):
        FederatedRoundModel(cfg, cell_uplink_bps=0.0,
                            cell_downlink_bps=1e9, access_rtt_s=1e-3)
    model = FederatedRoundModel(cfg, cell_uplink_bps=1e8,
                                cell_downlink_bps=4e8, access_rtt_s=1e-3)
    with pytest.raises(ValueError):
        model.round_time_s(straggler_factor=0.5)
    with pytest.raises(ValueError):
        model.upload_s(concurrent=0)


def test_fl_upload_scales_with_cohort():
    cfg = FederatedConfig(clients_per_round=16)
    model = FederatedRoundModel(cfg, cell_uplink_bps=units.mbps(100.0),
                                cell_downlink_bps=units.mbps(400.0),
                                access_rtt_s=units.ms(10.0))
    assert model.upload_s(concurrent=16) > model.upload_s(concurrent=4)


def test_fl_6g_shifts_bottleneck_to_compute():
    """On 5G the round is network-bound; on the 6G edge it becomes
    compute-bound — the qualitative claim of the outlook."""
    results = FederatedEdgeStudy().compare()
    assert results["5G + cloud aggregation"]["network_share"] > 0.7
    assert results["6G + edge aggregation"]["network_share"] < 0.2
    assert results["6G + edge aggregation"]["round_time_s"] < \
        results["5G + cloud aggregation"]["round_time_s"] / 4.0


def test_fl_edge_aggregation_helps_most_with_small_models():
    """With tiny updates the per-round RTT overhead dominates, so the
    aggregator's distance matters; with huge models the shared radio
    does."""
    small = FederatedConfig(model_size_bits=0.1 * units.MB,
                            local_compute_s=0.0)
    study = FederatedEdgeStudy(small)
    r = study.compare()
    cloud = r["5G + cloud aggregation"]["round_time_s"]
    edge = r["5G + edge aggregation"]["round_time_s"]
    assert edge < 0.6 * cloud


# ---------------------------------------------------------------------------
# Predictive slicing
# ---------------------------------------------------------------------------

def test_predictive_beats_reactive_on_diurnal_trace():
    study = PredictiveSlicingStudy()
    trace = study.diurnal_demand(units.gbps(6.0))
    breaches = study.run(trace)
    assert breaches["predictive"] <= breaches["reactive"]
    assert breaches["reactive"] > 0      # the lag hurts on ramps


def test_slicing_study_validation():
    with pytest.raises(ValueError):
        PredictiveSlicingStudy(capacity_bps=0.0)
    with pytest.raises(ValueError):
        PredictiveSlicingStudy(safe_utilisation=1.0)
    with pytest.raises(ValueError):
        PredictiveSlicingStudy(headroom=0.9)
    study = PredictiveSlicingStudy()
    with pytest.raises(ValueError):
        study.run([1.0, 2.0])            # too short
    with pytest.raises(ValueError):
        study.run([-1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        study.diurnal_demand(0.0)


def test_flat_demand_never_breaches():
    study = PredictiveSlicingStudy()
    flat = np.full(50, units.gbps(2.0))
    breaches = study.run(flat)
    assert breaches == {"reactive": 0, "predictive": 0}


# ---------------------------------------------------------------------------
# Energy model
# ---------------------------------------------------------------------------

def test_power_model_presets():
    p5, p6 = SitePowerModel.macro_5g(), SitePowerModel.macro_6g()
    assert p6.baseline_w < p5.baseline_w
    assert p6.wakeup_s < p5.wakeup_s
    # full-load draw magnitudes: hundreds of watts to ~kW
    assert 800 < p5.power_w(1.0) < 2000
    assert p6.power_w(1.0) < p5.power_w(1.0)


def test_power_model_validation():
    with pytest.raises(ValueError):
        SitePowerModel(SitePowerModel.macro_5g().generation,
                       baseline_w=100.0, dynamic_w=50.0,
                       sleep_w=200.0, wakeup_s=1.0)
    p = SitePowerModel.macro_5g()
    with pytest.raises(ValueError):
        p.power_w(1.5)


def test_microsleep_reduces_idle_draw():
    p6 = SitePowerModel.macro_6g()
    idle_with_microsleep = p6.power_w(0.02)
    assert idle_with_microsleep < p6.baseline_w
    assert p6.power_w(0.02, asleep=True) == p6.sleep_w


def test_daily_energy_6g_below_5g():
    e5 = EnergyModel(SitePowerModel.macro_5g(), n_sites=6)
    e6 = EnergyModel(SitePowerModel.macro_6g(), n_sites=6)
    assert e6.daily_energy_kwh() < 0.75 * e5.daily_energy_kwh()


def test_sleep_saves_energy_but_costs_latency():
    em = EnergyModel(SitePowerModel.macro_5g(), sleep_threshold=0.08)
    assert em.sleep_saving_fraction() > 0.0
    assert em.first_packet_penalty_s(0.02) == pytest.approx(2.0)
    assert em.first_packet_penalty_s(0.5) == 0.0


def test_energy_model_validation():
    with pytest.raises(ValueError):
        EnergyModel(SitePowerModel.macro_5g(), n_sites=0)
    em = EnergyModel(SitePowerModel.macro_5g())
    with pytest.raises(ValueError):
        em.daily_energy_kwh([])
    with pytest.raises(ValueError):
        em.daily_energy_kwh([1.5])
    with pytest.raises(ValueError):
        em.first_packet_penalty_s(2.0)


def test_diurnal_profile_shape():
    profile = np.asarray(DIURNAL_URBAN_PROFILE)
    assert profile.size == 24
    assert profile.argmax() in range(16, 20)    # evening peak
    assert profile.argmin() in range(2, 6)      # night trough
