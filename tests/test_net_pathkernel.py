"""Tests for the compiled path-latency sampler (net.pathkernel)."""

import numpy as np
import pytest

from repro.geo import GeoPoint
from repro.net.link import LinkKind
from repro.net.node import Node, NodeKind
from repro.net.pathkernel import CompiledPath
from repro.net.topology import Topology
from repro.sim import RngRegistry


def make_topology(utilisations=(0.3, 0.0, 0.6)):
    """A four-node chain with mixed loaded/unloaded links."""
    topo = Topology("chain")
    points = [GeoPoint(46.6, 14.3), GeoPoint(46.7, 14.5),
              GeoPoint(46.9, 14.9), GeoPoint(47.1, 15.3)]
    names = ["a", "b", "c", "d"]
    for name, point in zip(names, points):
        topo.add_node(Node(name=name, kind=NodeKind.ROUTER, location=point,
                           forwarding_delay_s=50e-6))
    for (x, y), rho in zip(zip(names, names[1:]), utilisations):
        topo.connect(x, y, kind=LinkKind.FIBRE, utilisation=rho)
    return topo


def fresh_rng(seed=77):
    return RngRegistry(seed).fresh("pathkernel")


def test_compiled_round_trip_bitwise_equals_walk():
    topo = make_topology()
    path = ["a", "b", "c", "d"]
    compiled = topo.compile_path(path)
    for seed in (1, 2, 3, 42):
        walked = topo.round_trip(path, rng=fresh_rng(seed)).total
        sampled = compiled.sample_round_trip(fresh_rng(seed))
        assert sampled == walked


def test_compiled_echo_bitwise_equals_ping_composition():
    """sample_echo matches the forward.total + back.total association."""
    topo = make_topology()
    path = ["a", "b", "c", "d"]
    compiled = topo.compile_path(path)
    for seed in (5, 9):
        rng = fresh_rng(seed)
        forward = topo.path_latency(path, rng=rng)
        back = topo.path_latency(path[::-1], rng=rng)
        assert compiled.sample_echo(fresh_rng(seed)) == \
            forward.total + back.total


def test_compiled_path_preserves_stream_position():
    """Sampling consumes exactly the draws the scalar walk consumes."""
    topo = make_topology()
    path = ["a", "b", "c", "d"]
    compiled = topo.compile_path(path)
    rng_a, rng_b = fresh_rng(), fresh_rng()
    topo.round_trip(path, rng=rng_a)
    compiled.sample_round_trip(rng_b)
    assert rng_a.random() == rng_b.random()


def test_unloaded_links_draw_nothing():
    topo = make_topology(utilisations=(0.0, 0.0, 0.0))
    compiled = topo.compile_path(["a", "b", "c", "d"])
    assert compiled.stochastic_link_count == 0
    rng = fresh_rng()
    before = rng.random()
    rng2 = fresh_rng()
    compiled.sample_round_trip(rng2)
    assert rng2.random() == before
    assert compiled.sample_round_trip(rng2) == \
        compiled.deterministic_total


def test_deterministic_total_matches_mean_free_walk():
    topo = make_topology(utilisations=(0.0, 0.0, 0.0))
    path = ["a", "b", "c", "d"]
    compiled = topo.compile_path(path)
    assert compiled.deterministic_total == \
        topo.round_trip(path, rng=fresh_rng()).total


def test_compiled_path_snapshots_utilisation():
    topo = make_topology()
    path = ["a", "b", "c", "d"]
    stale = topo.compile_path(path)
    topo.link("b", "c").utilisation = 0.9
    recompiled = topo.compile_path(path)
    assert recompiled.stochastic_link_count == \
        stale.stochastic_link_count + 2
    assert recompiled.sample_round_trip(fresh_rng()) == \
        topo.round_trip(path, rng=fresh_rng()).total


def test_compiled_path_rejects_trivial_path():
    topo = make_topology()
    with pytest.raises(ValueError):
        topo.compile_path(["a"])
    with pytest.raises(ValueError):
        CompiledPath(topo, [])


def test_compiled_path_respects_size_bits():
    topo = make_topology()
    path = ["a", "b", "c"]
    small = topo.compile_path(path, size_bits=512.0)
    large = topo.compile_path(path, size_bits=12_000.0)
    assert small.deterministic_total < large.deterministic_total
    assert small.sample_round_trip(fresh_rng(8)) == \
        topo.round_trip(path, 512.0, rng=fresh_rng(8)).total
