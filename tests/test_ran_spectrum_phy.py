"""Tests for numerology, radio configs and the air-interface model."""

import numpy as np
import pytest

from repro import units
from repro.ran import (
    AirInterface,
    Band,
    ChannelModel,
    Generation,
    Numerology,
    RadioConfig,
)
from repro.sim import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(99).stream("phy")


def air_for(config):
    return AirInterface(config, ChannelModel(config.carrier_frequency_hz))


# ---------------------------------------------------------------------------
# Numerology / RadioConfig
# ---------------------------------------------------------------------------

def test_numerology_scs_and_slots():
    mu0 = Numerology(0)
    assert mu0.subcarrier_spacing_hz == 15e3
    assert mu0.slot_duration_s == pytest.approx(1e-3)
    mu3 = Numerology(3)
    assert mu3.subcarrier_spacing_hz == 120e3
    assert mu3.slot_duration_s == pytest.approx(0.125e-3)
    assert mu3.slots_per_subframe == 8


def test_numerology_bounds():
    with pytest.raises(ValueError):
        Numerology(-1)
    with pytest.raises(ValueError):
        Numerology(7)


def test_5g_and_6g_presets():
    cfg5 = RadioConfig.nr_5g()
    cfg6 = RadioConfig.nr_6g()
    assert cfg5.generation is Generation.FIVE_G
    assert cfg6.generation is Generation.SIX_G
    assert cfg6.slot_s < cfg5.slot_s / 10
    assert cfg6.configured_grant and not cfg5.configured_grant
    assert cfg6.band is Band.SUB_THZ


def test_preset_overrides():
    cfg = RadioConfig.nr_5g(sr_period_slots=2)
    assert cfg.sr_period_slots == 2


def test_config_validation():
    with pytest.raises(ValueError):
        RadioConfig.nr_5g(sr_period_slots=0)
    with pytest.raises(ValueError):
        RadioConfig.nr_5g(target_bler=1.0)
    with pytest.raises(ValueError):
        RadioConfig.nr_5g(harq_rtt_slots=0)
    with pytest.raises(ValueError):
        RadioConfig.nr_5g(processing_base_s=-1e-3)


# ---------------------------------------------------------------------------
# Air-interface magnitudes (the paper's Section II-A claims)
# ---------------------------------------------------------------------------

def test_5g_air_rtt_is_milliseconds(rng):
    air = air_for(RadioConfig.nr_5g())
    samples = [air.sample_rtt(rng, load=0.3, sinr_db=15) for _ in range(500)]
    mean = np.mean(samples)
    assert units.ms(4.0) < mean < units.ms(15.0)


def test_6g_air_one_way_near_100us_target(rng):
    """Sec. II-A: 6G can reach ~100 us — ten times below 5G's 1 ms."""
    air = air_for(RadioConfig.nr_6g())
    samples = [air.sample_uplink(rng, load=0.2, sinr_db=20)
               for _ in range(500)]
    assert np.mean(samples) < units.us(150.0)


def test_6g_vs_5g_factor_at_least_ten(rng):
    air5, air6 = air_for(RadioConfig.nr_5g()), air_for(RadioConfig.nr_6g())
    m5 = air5.mean_rtt(load=0.2, sinr_db=15)
    m6 = air6.mean_rtt(load=0.2, sinr_db=15)
    assert m5 / m6 > 10.0


def test_uplink_slower_than_downlink_without_configured_grant(rng):
    air = air_for(RadioConfig.nr_5g())
    assert air.mean_uplink(load=0.0, sinr_db=20) > \
        air.mean_downlink(load=0.0, sinr_db=20)


def test_configured_grant_removes_sr_cycle():
    base = RadioConfig.nr_5g()
    cg = RadioConfig.nr_5g(configured_grant=True)
    gain = (air_for(base).mean_uplink(sinr_db=20)
            - air_for(cg).mean_uplink(sinr_db=20))
    expected = (base.sr_period_slots / 2.0 + base.grant_delay_slots) \
        * base.slot_s
    assert gain == pytest.approx(expected, rel=1e-6)


def test_load_increases_latency(rng):
    air = air_for(RadioConfig.nr_5g())
    assert air.mean_rtt(load=0.9, sinr_db=15) > \
        air.mean_rtt(load=0.1, sinr_db=15)


def test_poor_sinr_increases_latency_via_harq():
    air = air_for(RadioConfig.nr_5g())
    assert air.mean_rtt(load=0.0, sinr_db=-5.0) > \
        air.mean_rtt(load=0.0, sinr_db=25.0)


def test_sample_matches_analytic_mean(rng):
    air = air_for(RadioConfig.nr_5g())
    samples = [air.sample_rtt(rng, load=0.5, sinr_db=10)
               for _ in range(20_000)]
    assert np.mean(samples) == pytest.approx(
        air.mean_rtt(load=0.5, sinr_db=10), rel=0.05)


def test_air_sample_carries_retx_count(rng):
    air = air_for(RadioConfig.nr_5g())
    sample = air.sample_uplink(rng, load=0.0, sinr_db=-10.0)
    assert 0 <= sample.retx <= air.config.max_harq_retx
    assert float(sample) > 0


def test_harq_budget_respected(rng):
    air = air_for(RadioConfig.nr_5g(max_harq_retx=2))
    # hopeless SINR: every attempt fails until the budget runs out
    for _ in range(50):
        assert air.sample_downlink(rng, sinr_db=-40.0).retx <= 2


def test_expected_retx_formula():
    air = air_for(RadioConfig.nr_5g(max_harq_retx=3))
    assert air.expected_retx(0.0) == 0.0
    # bler=0.5: E = 0.5 + 0.25 + 0.125
    assert air.expected_retx(0.5) == pytest.approx(0.875)
    with pytest.raises(ValueError):
        air.expected_retx(1.0)


def test_invalid_load_rejected(rng):
    air = air_for(RadioConfig.nr_5g())
    with pytest.raises(ValueError):
        air.sample_uplink(rng, load=1.0)
    with pytest.raises(ValueError):
        air.mean_uplink(load=-0.1)


def test_zero_load_no_queueing(rng):
    air = air_for(RadioConfig.nr_5g())
    cfg = air.config
    # At perfect SINR and zero load, UL latency is bounded by the
    # deterministic components plus the two uniform waits.
    upper = (cfg.processing_base_s
             + (cfg.sr_period_slots + cfg.grant_delay_slots + 2) * cfg.slot_s)
    for _ in range(200):
        assert air.sample_uplink(rng, load=0.0, sinr_db=60.0) <= upper
