"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_advances_to_exact_time():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_does_not_process_later_events():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).subscribe(lambda ev: fired.append(1.0))
    sim.timeout(3.0).subscribe(lambda ev: fired.append(3.0))
    sim.run(until=2.0)
    assert fired == [1.0]


def test_simple_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(1.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(2.0)
        trace.append(("end", sim.now))

    sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    assert sim.run_process(proc()) == 42


def test_timeout_value_passed_to_process():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc()) == "payload"


def test_process_exception_propagates_through_run_process():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        sim.run_process(proc())


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return (result, sim.now)

    assert sim.run_process(parent()) == ("child-result", 2.0)


def test_failing_child_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught:{exc}"

    assert sim.run_process(parent()) == "caught:child died"


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event("gate")
    log = []

    def opener():
        yield sim.timeout(4.0)
        gate.succeed("open!")

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    sim.process(opener())
    sim.process(waiter())
    sim.run()
    assert log == [(4.0, "open!")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_yielding_already_processed_event_continues_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process the event so it is 'processed'

    def proc():
        v = yield ev
        return (v, sim.now)

    assert sim.run_process(proc()) == ("early", 0.0)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 17  # not an Event

    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run_process(proc())


def test_all_of_collects_all_values():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        results = yield sim.all_of([t1, t2])
        return (sorted(results.values()), sim.now)

    assert sim.run_process(proc()) == (["a", "b"], 2.0)


def test_any_of_returns_first():
    sim = Simulator()

    def proc():
        slow = sim.timeout(9.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        results = yield sim.any_of([slow, fast])
        return (list(results.values()), sim.now)

    assert sim.run_process(proc()) == (["fast"], 1.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        result = yield sim.all_of([])
        return result

    assert sim.run_process(proc()) == {}


def test_interrupt_reaches_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def attacker(proc):
        yield sim.timeout(3.0)
        proc.interrupt(cause="handover")

    victim_proc = sim.process(victim())
    sim.process(attacker(victim_proc))
    sim.run()
    assert log == [(3.0, "handover")]


def test_uncaught_interrupt_fails_process():
    sim = Simulator()

    def victim():
        yield sim.timeout(100.0)

    def attacker(proc):
        yield sim.timeout(1.0)
        proc.interrupt()

    victim_proc = sim.process(victim())
    sim.process(attacker(victim_proc))
    sim.run()
    assert victim_proc.triggered and not victim_proc.ok
    assert isinstance(victim_proc.value, Interrupt)


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_deterministic_tie_breaking():
    """Events at the same instant fire in scheduling order."""
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.timeout(1.0, value=label).subscribe(
            lambda ev: order.append(ev.value))
    sim.run()
    assert order == ["first", "second", "third"]


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_events_processed_counter():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.events_processed == 2


def test_deadlocked_process_detected_by_run_process():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="never finished"):
        sim.run_process(stuck())


def test_cross_simulator_event_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.event()

    def proc():
        yield foreign

    sim_a.process(proc())
    with pytest.raises(SimulationError):
        sim_a.run()


def test_nested_process_chain_timing():
    sim = Simulator()

    def level3():
        yield sim.timeout(1.0)
        return 3

    def level2():
        v = yield sim.process(level3())
        yield sim.timeout(1.0)
        return v + 10

    def level1():
        v = yield sim.process(level2())
        return (v, sim.now)

    assert sim.run_process(level1()) == (13, 2.0)


def test_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]
