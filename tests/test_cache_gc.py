"""Tests for cache lifecycle management (repro.fleet.gc): usage
stats over both tiers, orphan sweeping, age expiry, LRU-by-atime
eviction with deterministic ordering, and the ``cache`` CLI."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.fleet import cache_usage, run_gc
from repro.fleet.cache import OBJECTS_DIR
from repro.fleet.compiled import COMPILED_DIR
from repro.fleet.gc import CacheEntry

NOW = 1_000_000.0


def _entry(root, tier_dir, name, suffix, *, size, atime):
    """One fake cache entry file with a controlled size and atime."""
    path = root / tier_dir / name[:2] / f"{name}{suffix}"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"x" * size)
    os.utime(path, (atime, atime))
    return path


def _result(root, name, *, size, atime):
    return _entry(root, OBJECTS_DIR, name, ".json", size=size,
                  atime=atime)


def _compiled(root, name, *, size, atime):
    return _entry(root, COMPILED_DIR, name, ".pkl", size=size,
                  atime=atime)


@pytest.fixture
def cache_tree(tmp_path):
    """Two tiers, four entries, strictly ordered last-use times."""
    root = tmp_path / "cache"
    _result(root, "aa11", size=100, atime=NOW - 400)   # oldest
    _result(root, "bb22", size=200, atime=NOW - 300)
    _compiled(root, "cc33", size=400, atime=NOW - 200)
    _compiled(root, "dd44", size=800, atime=NOW - 100)  # newest
    return root


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_cache_usage_counts_both_tiers(cache_tree):
    usage = cache_usage(cache_tree)
    assert usage.entries == 4
    assert usage.size == 1500
    assert usage.tier("results").entries == 2
    assert usage.tier("results").size == 300
    assert usage.tier("compiled").entries == 2
    assert usage.tier("compiled").size == 1200
    assert usage.staging == 0
    with pytest.raises(KeyError):
        usage.tier("nonsense")


def test_cache_usage_reports_staging_files(cache_tree):
    staging = cache_tree / OBJECTS_DIR / "aa" / ".aa11.json.123.tmp"
    staging.write_text("partial")
    assert cache_usage(cache_tree).staging == 1


def test_cache_usage_of_a_missing_directory_is_empty(tmp_path):
    usage = cache_usage(tmp_path / "nope")
    assert usage.entries == 0 and usage.size == 0


def test_usage_summary_and_dict_round_trip(cache_tree):
    usage = cache_usage(cache_tree)
    assert "2 results" in usage.summary()
    assert "1500 bytes" in usage.summary()
    payload = usage.to_dict()
    assert payload["entries"] == 4 and payload["size"] == 1500
    assert json.dumps(payload)   # JSON-serializable for /healthz


# ---------------------------------------------------------------------------
# GC: size budget (LRU by atime)
# ---------------------------------------------------------------------------

def test_gc_without_limits_removes_nothing(cache_tree):
    report = run_gc(cache_tree, now=NOW)
    assert report.removed_entries == 0
    assert report.kept_entries == 4 and report.kept_size == 1500


def test_gc_max_bytes_evicts_least_recently_used_first(cache_tree):
    # Budget of 1300 forces out exactly the two oldest entries
    # (100 + 200 frees enough; the newer 400/800 survive).
    report = run_gc(cache_tree, max_bytes=1300, now=NOW)
    evicted = [entry.path.name for entry in report.evicted]
    assert evicted == ["aa11.json", "bb22.json"]
    assert report.kept_entries == 2 and report.kept_size == 1200
    assert cache_usage(cache_tree).size == 1200


def test_gc_eviction_stops_at_the_budget(cache_tree):
    # 1450 only needs the single oldest entry gone.
    report = run_gc(cache_tree, max_bytes=1450, now=NOW)
    assert [e.path.name for e in report.evicted] == ["aa11.json"]
    assert report.kept_size == 1400


def test_gc_eviction_crosses_tiers(cache_tree):
    # A tight budget eats into the compiled tier too, oldest first.
    report = run_gc(cache_tree, max_bytes=800, now=NOW)
    assert [e.path.name for e in report.evicted] == [
        "aa11.json", "bb22.json", "cc33.pkl"]
    assert report.kept_size == 800
    # The surviving entry is the most recently used one.
    assert cache_usage(cache_tree).tier("compiled").entries == 1


def test_gc_atime_ties_break_by_path(tmp_path):
    root = tmp_path / "cache"
    _result(root, "zz99", size=10, atime=NOW - 100)
    _result(root, "aa00", size=10, atime=NOW - 100)
    report = run_gc(root, max_bytes=10, now=NOW)
    assert [e.path.name for e in report.evicted] == ["aa00.json"]


def test_gc_removes_empty_shard_directories(cache_tree):
    run_gc(cache_tree, max_bytes=0, now=NOW)
    assert not (cache_tree / OBJECTS_DIR / "aa").exists()
    assert not (cache_tree / COMPILED_DIR / "dd").exists()


# ---------------------------------------------------------------------------
# GC: age expiry + orphans
# ---------------------------------------------------------------------------

def test_gc_max_age_expires_old_entries(cache_tree):
    report = run_gc(cache_tree, max_age_s=250, now=NOW)
    expired = [entry.path.name for entry in report.expired]
    assert expired == ["aa11.json", "bb22.json"]
    assert report.evicted == ()
    assert report.kept_entries == 2


def test_gc_age_and_size_compose(cache_tree):
    # Age expiry first (the two oldest), then LRU for the budget.
    report = run_gc(cache_tree, max_age_s=250, max_bytes=900, now=NOW)
    assert [e.path.name for e in report.expired] == [
        "aa11.json", "bb22.json"]
    assert [e.path.name for e in report.evicted] == ["cc33.pkl"]
    assert report.kept_size == 800
    assert report.removed_entries == 3
    assert report.removed_size == 700


def test_gc_sweeps_aged_orphan_staging_files_in_both_tiers(cache_tree):
    # The orphan sweep compares mtimes against the real clock, so the
    # staging files get real (not synthetic) timestamps here.
    stale = time.time() - 7200
    old = cache_tree / OBJECTS_DIR / "aa" / ".aa11.json.99.tmp"
    old.write_text("dead writer")
    os.utime(old, (stale, stale))
    compiled_old = cache_tree / COMPILED_DIR / "cc" / ".cc33.pkl.7.tmp"
    compiled_old.write_text("dead writer")
    os.utime(compiled_old, (stale, stale))
    fresh = cache_tree / OBJECTS_DIR / "bb" / ".bb22.json.1.tmp"
    fresh.write_text("live writer")   # recent mtime: must survive

    report = run_gc(cache_tree)
    assert report.orphans_removed == 2
    assert not old.exists() and not compiled_old.exists()
    assert fresh.exists()
    assert report.kept_entries == 4   # real entries untouched


def test_gc_report_summary_mentions_every_phase(cache_tree):
    report = run_gc(cache_tree, max_bytes=1300, max_age_s=350, now=NOW)
    text = report.summary()
    assert "expired 1" in text
    assert "evicted 1" in text
    assert "kept 2" in text


def test_gc_report_dict_is_json_serializable(cache_tree):
    report = run_gc(cache_tree, max_bytes=0, now=NOW)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["removed_entries"] == 4
    assert payload["kept_entries"] == 0


def test_cache_entry_to_dict():
    entry = CacheEntry(tier="results",
                       path=Path("objects/aa/aa11.json"),
                       size=7, atime=3.0)
    assert entry.to_dict() == {"tier": "results",
                               "path": "objects/aa/aa11.json",
                               "size": 7, "atime": 3.0}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_cache_stats(cache_tree, capsys):
    assert main(["cache", "stats", "--cache", str(cache_tree)]) == 0
    out = capsys.readouterr().out
    assert "4 entries" in out and "1500 bytes" in out


def test_cli_cache_stats_json(cache_tree, capsys):
    assert main(["cache", "stats", "--cache", str(cache_tree),
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 4


def test_cli_cache_gc_with_byte_suffix(cache_tree, capsys):
    # 1K = 1024 bytes: the three oldest entries go (1500 -> 800).
    assert main(["cache", "gc", "--cache", str(cache_tree),
                 "--max-bytes", "1K"]) == 0
    assert "evicted 3" in capsys.readouterr().out
    assert cache_usage(cache_tree).size == 800


def test_cli_cache_rejects_unknown_action(capsys):
    assert main(["cache", "prune"]) == 2
    assert "stats" in capsys.readouterr().err


def test_cli_cache_rejects_bad_byte_budget(cache_tree, capsys):
    assert main(["cache", "gc", "--cache", str(cache_tree),
                 "--max-bytes", "lots"]) == 2
    assert "error" in capsys.readouterr().err
