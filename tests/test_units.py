"""Unit tests for unit conversions and propagation constants."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_time_round_trips():
    assert units.to_ms(units.ms(42.0)) == pytest.approx(42.0)
    assert units.to_us(units.us(100.0)) == pytest.approx(100.0)


def test_time_constants_ordering():
    assert units.NS < units.US < units.MS < units.SECOND
    assert units.SECOND < units.MINUTE < units.HOUR < units.DAY


def test_distance_round_trip():
    assert units.to_km(units.km(2544.0)) == pytest.approx(2544.0)


def test_data_rate_conversions():
    assert units.tbps(1.0) == 1e12
    assert units.gbps(1.0) == 1e9
    assert units.to_mbps(units.mbps(250.0)) == pytest.approx(250.0)


def test_bytes_to_bits():
    assert units.bytes_(1.0) == 8.0
    # 4 TB/day autonomous-vehicle figure from the paper, in bits
    assert units.to_tb(4 * units.TB) == pytest.approx(4.0)


def test_fibre_delay_rule_of_thumb():
    # ~5 us per km (within 2%)
    d = units.fibre_delay(units.km(1.0))
    assert d == pytest.approx(5e-6, rel=0.02)


def test_fibre_slower_than_radio():
    assert units.fibre_delay(1000.0) > units.radio_delay(1000.0)


def test_vienna_bucharest_order_of_magnitude():
    # ~850 km one way -> ~4.2 ms in fibre
    delay = units.fibre_delay(units.km(850.0))
    assert 3.5e-3 < delay < 5.0e-3


def test_transmission_delay():
    # 1500-byte packet at 1 Gbps: 12 us
    d = units.transmission_delay(units.bytes_(1500), units.gbps(1.0))
    assert d == pytest.approx(12e-6)


def test_transmission_delay_rejects_bad_inputs():
    with pytest.raises(ValueError):
        units.transmission_delay(100.0, 0.0)
    with pytest.raises(ValueError):
        units.transmission_delay(-1.0, 1e9)


@given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
def test_fibre_delay_monotone_nonnegative(distance):
    assert units.fibre_delay(distance) >= 0.0


@given(st.floats(min_value=1e-3, max_value=1e12),
       st.floats(min_value=1e3, max_value=1e13))
def test_transmission_delay_scales_linearly(size, rate):
    base = units.transmission_delay(size, rate)
    assert units.transmission_delay(2 * size, rate) == pytest.approx(2 * base)
    assert units.transmission_delay(size, 2 * rate) == pytest.approx(base / 2)
