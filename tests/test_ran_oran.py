"""Tests for the O-RAN control-plane components."""

import pytest

from repro import units
from repro.geo import KLAGENFURT
from repro.ran import (
    ControlProcedure,
    NearRTRIC,
    NonRTRIC,
    RicTier,
    ServiceManagementOrchestration,
    SignallingLeg,
    XApp,
)


def test_xapp_tier_bounds_enforced():
    XApp("mobility-mgmt", RicTier.NEAR_REAL_TIME, processing_s=50e-3)
    with pytest.raises(ValueError):
        # near-rt xApp claiming sub-10ms processing violates its tier
        XApp("too-fast", RicTier.NEAR_REAL_TIME, processing_s=1e-3)
    with pytest.raises(ValueError):
        XApp("too-slow", RicTier.REAL_TIME, processing_s=0.5)
    with pytest.raises(ValueError):
        XApp("", RicTier.NON_REAL_TIME)
    with pytest.raises(ValueError):
        XApp("neg", RicTier.NON_REAL_TIME, processing_s=-1.0)


def test_near_rt_ric_deployment():
    ric = NearRTRIC("ric-kla", KLAGENFURT, e2_latency_s=units.ms(1.0))
    app = XApp("qos-enforcer", RicTier.NEAR_REAL_TIME, processing_s=20e-3)
    ric.deploy(app)
    assert ric.xapp("qos-enforcer") is app
    with pytest.raises(ValueError):   # duplicate
        ric.deploy(app)
    with pytest.raises(ValueError):   # wrong tier
        ric.deploy(XApp("trainer", RicTier.NON_REAL_TIME, processing_s=10.0))
    with pytest.raises(KeyError):
        ric.xapp("missing")


def test_smo_policy_deployment_latency():
    ric = NearRTRIC("ric", KLAGENFURT, e2_latency_s=2e-3)
    smo = ServiceManagementOrchestration(
        "smo", NonRTRIC("non-rt", a1_latency_s=0.4))
    assert smo.policy_deployment_latency(ric) == pytest.approx(0.402)


def test_control_procedure_accumulates_legs():
    proc = ControlProcedure("pdu-session-setup")
    proc.add("UE -> gNB (air)", units.ms(5.0)) \
        .add("gNB -> AMF (backhaul)", units.ms(8.0)) \
        .add("AMF processing", units.ms(2.0)) \
        .add("AMF -> gNB (backhaul)", units.ms(8.0)) \
        .add("gNB -> UE (air)", units.ms(5.0))
    assert len(proc) == 5
    assert proc.total_s == pytest.approx(units.ms(28.0))


def test_control_procedure_breakdown_aggregates():
    proc = ControlProcedure("x")
    proc.add("backhaul", 1e-3).add("backhaul", 2e-3).add("air", 5e-3)
    bd = proc.breakdown()
    assert bd["backhaul"] == pytest.approx(3e-3)
    assert bd["air"] == pytest.approx(5e-3)


def test_signalling_leg_validation():
    with pytest.raises(ValueError):
        SignallingLeg("bad", -1e-3)
