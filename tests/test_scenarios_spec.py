"""Tests for the declarative scenario API: serialisation, registry,
and determinism of spec-built campaigns."""

import json

import numpy as np
import pytest

from repro import scenarios
from repro.ran.spectrum import Generation, RadioConfig
from repro.scenarios import (
    CampaignSpec,
    GatewaySpec,
    RadioSpec,
    ScenarioSpec,
    SiteSpec,
    build,
    klagenfurt,
    skopje,
)


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", [klagenfurt, skopje])
def test_spec_dict_round_trip_equality(factory):
    spec = factory()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("factory", [klagenfurt, skopje])
def test_spec_json_round_trip_equality(factory):
    """Through an actual JSON encode/decode, not just to_dict."""
    spec = factory()
    restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_spec_factories_are_pure():
    assert klagenfurt() == klagenfurt()
    assert skopje() == skopje()
    assert klagenfurt() != skopje()


def test_klagenfurt_variants_differ():
    base = klagenfurt()
    assert klagenfurt(edge_breakout=True) != base
    assert klagenfurt(radio_config=RadioConfig.nr_6g()) != base


def test_radio_spec_captures_config_losslessly():
    config = RadioConfig.nr_6g(buffer_service_s=0.2e-3)
    spec = RadioSpec.from_config(config, sites=[SiteSpec(cell="A1")])
    rebuilt = spec.build_config()
    assert rebuilt == config
    assert rebuilt.generation is Generation.SIX_G


def test_override_returns_modified_copy():
    spec = skopje()
    renamed = spec.override(name="skopje-v2")
    assert renamed.name == "skopje-v2"
    assert spec.name == "skopje"
    assert renamed.grid == spec.grid


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_campaign_spec_rejects_unknown_default_gateway():
    gw = GatewaySpec("sofia", "gw", "upf", lat=42.0, lon=23.0)
    with pytest.raises(ValueError):
        CampaignSpec(default_gateway="vienna", gateways=(gw,),
                     default_targets=("probe",))


def test_campaign_spec_rejects_unknown_weighting():
    gw = GatewaySpec("sofia", "gw", "upf", lat=42.0, lon=23.0)
    with pytest.raises(ValueError):
        CampaignSpec(default_gateway="sofia", gateways=(gw,),
                     default_targets=("probe",),
                     route_weighting="traffic-lights")


def test_radio_spec_requires_sites():
    with pytest.raises(ValueError):
        RadioSpec(sites=())


def test_scenario_spec_requires_name():
    spec = skopje()
    with pytest.raises(ValueError):
        spec.override(name="")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_lists_builtin_scenarios():
    assert "klagenfurt" in scenarios.names()
    assert "skopje" in scenarios.names()


def test_registry_lookup_returns_spec():
    spec = scenarios.get("skopje")
    assert isinstance(spec, ScenarioSpec)
    assert spec == skopje()


def test_registry_rejects_unknown_name():
    with pytest.raises(KeyError, match="registered"):
        scenarios.get("atlantis")


def test_registry_rejects_duplicate_registration():
    with pytest.raises(ValueError):
        scenarios.register("klagenfurt", klagenfurt)


def test_load_spec_from_json_file(tmp_path):
    path = tmp_path / "city.json"
    path.write_text(skopje().to_json())
    assert scenarios.load_spec(path) == skopje()


# ---------------------------------------------------------------------------
# Determinism of spec-built campaigns
# ---------------------------------------------------------------------------

def test_spec_built_campaign_is_seed_deterministic():
    """Same spec + same seed -> bit-identical dataset."""
    a = build(skopje(), seed=7).run_campaign(2.0)
    b = build(skopje(), seed=7).run_campaign(2.0)
    assert len(a) == len(b)
    assert np.array_equal(a.rtts, b.rtts)


def test_spec_built_campaign_varies_with_seed():
    a = build(skopje(), seed=7).run_campaign(2.0)
    b = build(skopje(), seed=8).run_campaign(2.0)
    n = min(len(a), len(b))
    assert not np.array_equal(a.rtts[:n], b.rtts[:n])


def test_json_round_tripped_spec_builds_identical_campaign():
    restored = ScenarioSpec.from_json(skopje().to_json())
    a = build(skopje(), seed=11).run_campaign(2.0)
    b = build(restored, seed=11).run_campaign(2.0)
    assert np.array_equal(a.rtts, b.rtts)


def test_campaign_knobs_reach_the_built_config():
    """Every campaign spec field must land in the compiled config."""
    import dataclasses

    spec = skopje()
    spec = spec.override(campaign=dataclasses.replace(
        spec.campaign, max_cell_load=0.5, handover_interruption_s=0.2))
    config = build(spec, seed=1).campaign_config
    assert config.max_cell_load == 0.5
    assert config.handover_interruption_s == 0.2


def test_built_scenario_without_baseline_endpoints_raises():
    spec = skopje().override(wired_src="", wired_dst="",
                             reference_src="", reference_dst="")
    city = build(spec, seed=1)
    with pytest.raises(ValueError):
        city.wired_baseline()
    with pytest.raises(ValueError):
        city.reference_trace()


# ---------------------------------------------------------------------------
# with_overrides (dotted-path patches)
# ---------------------------------------------------------------------------

def test_with_overrides_patches_nested_layers():
    patched = klagenfurt().with_overrides({
        "campaign.handover_interruption_s": 30e-3,
        "population.density_threshold": 800.0,
        "radio.sites.0.load": 0.7,
    })
    assert patched.campaign.handover_interruption_s == 30e-3
    assert patched.population.density_threshold == 800.0
    assert patched.radio.sites[0].load == 0.7
    # untouched siblings survive, and the base spec is unchanged
    assert patched.radio.sites[1:] == klagenfurt().radio.sites[1:]
    assert klagenfurt().campaign.handover_interruption_s != 30e-3


def test_with_overrides_unknown_path_is_clean_keyerror():
    with pytest.raises(KeyError, match="no field 'frobnicate'"):
        klagenfurt().with_overrides({"campaign.frobnicate": 1.0})
    with pytest.raises(KeyError, match="known:"):
        klagenfurt().with_overrides({"grid.diameter": 1.0})
    with pytest.raises(KeyError, match="out of range"):
        klagenfurt().with_overrides({"radio.sites.99.load": 0.5})
    with pytest.raises(KeyError, match="not an integer index"):
        klagenfurt().with_overrides({"radio.sites.first.load": 0.5})
    with pytest.raises(KeyError, match="malformed"):
        klagenfurt().with_overrides({"campaign..load": 0.5})


def test_with_overrides_type_mismatch_is_typeerror():
    with pytest.raises(TypeError):
        klagenfurt().with_overrides(
            {"campaign.handover_interruption_s": "slow"})
    with pytest.raises(TypeError):
        klagenfurt().with_overrides({"grid.cols": 6.5})     # int field
    with pytest.raises(TypeError):
        klagenfurt().with_overrides({"name": 7})            # str field
    with pytest.raises(TypeError):
        klagenfurt().with_overrides(
            {"radio.configured_grant": 1})                  # bool field


def test_with_overrides_none_only_for_optional_fields():
    # klagenfurt's congestion field is Optional and set; clearing works
    cleared = klagenfurt().with_overrides(
        {"campaign.extra_load_range": None})
    assert cleared.campaign.extra_load_range is None
    # but None cannot overwrite a required field
    with pytest.raises(TypeError, match="non-optional"):
        klagenfurt().with_overrides({"grid.cols": None})


def test_with_overrides_promotes_int_into_float_field():
    patched = klagenfurt().with_overrides({"grid.cell_size_m": 500})
    assert patched.grid.cell_size_m == 500.0
    assert isinstance(patched.grid.cell_size_m, float)


def test_with_overrides_reruns_layer_validation():
    with pytest.raises(ValueError, match="route weighting"):
        klagenfurt().with_overrides(
            {"campaign.route_weighting": "scenic"})


def test_patched_spec_round_trips_through_json():
    patched = klagenfurt().with_overrides({
        "campaign.handover_interruption_s": 30e-3,
        "radio.sites.0.load": 0.7,
        "campaign.peer_site_index": 1,
    })
    restored = ScenarioSpec.from_json(patched.to_json())
    assert restored == patched
    assert restored != klagenfurt()
    assert restored.campaign.peer_site_index == 1
