"""Unit tests for resources, stores and containers."""

import pytest

from repro.sim import (
    Container,
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2 = res.request(), res.request()
    assert r1.triggered and r2.triggered
    r3 = res.request()
    assert not r3.triggered
    assert res.count == 2 and res.queue_length == 1


def test_resource_release_wakes_fifo_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(label, hold):
        req = res.request()
        yield req
        order.append((label, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.process(worker("c", 1.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_resource_acquire_helper_releases_on_completion():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.acquire(hold=1.5)
        return sim.now

    def second():
        yield sim.timeout(0.1)
        yield from res.acquire(hold=1.0)
        return sim.now

    p1 = sim.process(worker())
    p2 = sim.process(second())
    sim.run()
    assert p1.value == 1.5
    assert p2.value == 2.5  # waits for first to release at 1.5
    assert res.count == 0


def test_release_foreign_request_rejected():
    sim = Simulator()
    res_a, res_b = Resource(sim, capacity=1), Resource(sim, capacity=1)
    req = res_a.request()
    with pytest.raises(SimulationError):
        res_b.release(req)


def test_release_queued_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    queued = res.request()
    res.release(queued)          # cancel while waiting
    assert res.queue_length == 0
    res.release(held)
    assert res.count == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_priority_resource_serves_lowest_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def worker(label, prio):
        req = res.request(priority=prio)
        yield req
        order.append(label)
        yield sim.timeout(1.0)
        res.release(req)

    def spawn():
        # Occupy the resource, then enqueue three waiters w/ priorities.
        req = res.request()
        yield req
        sim.process(worker("low", 5.0))
        sim.process(worker("high", 0.0))
        sim.process(worker("mid", 2.0))
        yield sim.timeout(1.0)
        res.release(req)

    sim.process(spawn())
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_are_fifo():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def worker(label):
        req = res.request(priority=1.0)
        yield req
        order.append(label)
        yield sim.timeout(1.0)
        res.release(req)

    def spawn():
        req = res.request()
        yield req
        for label in ("first", "second", "third"):
            sim.process(worker(label))
        yield sim.timeout(1.0)
        res.release(req)

    sim.process(spawn())
    sim.run()
    assert order == ["first", "second", "third"]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put("pkt-1")
        item = yield store.get()
        return item

    assert sim.run_process(proc()) == "pkt-1"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    p = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert p.value == ("late", 5.0)


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put(1)
        yield store.put(2)
        yield store.put(3)
        a = yield store.get()
        b = yield store.get()
        c = yield store.get()
        return [a, b, c]

    assert sim.run_process(proc()) == [1, 2, 3]


def test_bounded_store_blocks_put_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a", sim.now))
        yield store.put("b")
        log.append(("b", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        item = yield store.get()
        log.append(("got:" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [("a", 0.0), ("got:a", 3.0), ("b", 3.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("x")
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_get_blocks_until_level_sufficient():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=0.0)

    def getter():
        yield tank.get(10.0)
        return sim.now

    def putter():
        yield sim.timeout(2.0)
        yield tank.put(10.0)

    p = sim.process(getter())
    sim.process(putter())
    sim.run()
    assert p.value == 2.0
    assert tank.level == 0.0


def test_container_put_blocks_when_over_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=10.0)

    def putter():
        yield tank.put(5.0)
        return sim.now

    def drainer():
        yield sim.timeout(4.0)
        yield tank.get(6.0)

    p = sim.process(putter())
    sim.process(drainer())
    sim.run()
    assert p.value == 4.0
    assert tank.level == 9.0


def test_container_init_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=5.0, init=6.0)
    with pytest.raises(ValueError):
        Container(sim, capacity=0.0)


def test_container_negative_amounts_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=5.0)
    with pytest.raises(ValueError):
        tank.put(-1.0)
    with pytest.raises(ValueError):
        tank.get(-1.0)
