"""Tests for interdomain stitching, IXPs, traceroute and traffic matrices.

Builds a miniature central-Europe internet exhibiting the paper's detour
mechanism: two Klagenfurt ASes with no local interconnect whose traffic
must climb to Vienna transits.
"""

import pytest

from repro import units
from repro.geo import GeoPoint, KLAGENFURT, PRAGUE, VIENNA
from repro.net import (
    ASGraph,
    ASKind,
    AutonomousSystem,
    InternetExchange,
    Node,
    NodeKind,
    RouteComputer,
    Topology,
    TrafficMatrix,
    traceroute,
)
from repro.sim import RngRegistry


def offset(point, dlat, dlon):
    return GeoPoint(point.lat + dlat, point.lon + dlon)


@pytest.fixture
def europe():
    """Mini-internet:

    AS 100 (mobile ISP): UE gateway in Klagenfurt, core router in Vienna.
    AS 200 (transit): routers in Vienna and Prague.
    AS 300 (eyeball ISP): router in Klagenfurt hosting the probe.
    Relationships: 100 -> c2p -> 200 <- c2p <- 300.
    All Klagenfurt-local traffic therefore hairpins through Vienna.
    """
    topo = Topology("mini-europe")
    asg = ASGraph()
    asg.add(AutonomousSystem(100, "mobile", kind=ASKind.MOBILE_ISP))
    asg.add(AutonomousSystem(200, "transit", kind=ASKind.TRANSIT))
    asg.add(AutonomousSystem(300, "eyeball", kind=ASKind.ACCESS_ISP))
    asg.set_customer_of(100, 200)
    asg.set_customer_of(300, 200)

    ue = topo.add_node(Node("ue", NodeKind.UE, KLAGENFURT, asn=100))
    gw = topo.add_node(Node("gw-kla", NodeKind.GATEWAY,
                            offset(KLAGENFURT, 0.01, 0.0), asn=100))
    mob_vie = topo.add_node(Node("mob-vie", NodeKind.ROUTER, VIENNA, asn=100))
    tr_vie = topo.add_node(Node("tr-vie", NodeKind.ROUTER,
                                offset(VIENNA, 0.01, 0.0), asn=200))
    tr_prg = topo.add_node(Node("tr-prg", NodeKind.ROUTER, PRAGUE, asn=200))
    eye_kla = topo.add_node(Node("eye-kla", NodeKind.ROUTER,
                                 offset(KLAGENFURT, -0.01, 0.0), asn=300))
    probe = topo.add_node(Node("probe", NodeKind.PROBE,
                               offset(KLAGENFURT, -0.02, 0.0), asn=300))

    topo.connect(ue, gw)
    topo.connect(gw, mob_vie)
    topo.connect(mob_vie, tr_vie)     # 100 <-> 200 border (Vienna)
    topo.connect(tr_vie, tr_prg)
    topo.connect(tr_vie, eye_kla)     # 200 <-> 300 border
    topo.connect(eye_kla, probe)
    return topo, asg


def test_intra_as_route(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    result = rc.route("ue", "mob-vie")
    assert result.path == ("ue", "gw-kla", "mob-vie")
    assert result.as_path == (100,)
    assert result.route is None


def test_interdomain_route_hairpins_through_vienna(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    result = rc.route("ue", "probe")
    assert result.as_path == (100, 200, 300)
    assert result.path == ("ue", "gw-kla", "mob-vie", "tr-vie",
                           "eye-kla", "probe")
    # Geographic path is a Vienna round trip for a local destination.
    assert topo.geographic_path_length(list(result.path)) > 400e3


def test_route_cache_and_invalidate(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    first = rc.route("ue", "probe")
    assert rc.route("ue", "probe") is first    # cached object
    rc.invalidate()
    assert rc.route("ue", "probe") is not first


def test_route_requires_asn(europe):
    topo, asg = europe
    stray = topo.add_node(Node("stray", NodeKind.SERVER, VIENNA, asn=None))
    rc = RouteComputer(topo, asg)
    with pytest.raises(ValueError):
        rc.route("ue", "stray")


def test_route_unreachable_when_no_policy_path(europe):
    topo, asg = europe
    # AS 400 exists in the graph but has no relationships.
    asg.add(AutonomousSystem(400, "island"))
    topo.add_node(Node("island-r", NodeKind.ROUTER, PRAGUE, asn=400))
    rc = RouteComputer(topo, asg)
    with pytest.raises(LookupError):
        rc.route("ue", "island-r")


def test_missing_border_link_detected(europe):
    topo, asg = europe
    # Policy says 100->200 exists, but remove the physical border link.
    topo.remove_link("mob-vie", "tr-vie")
    rc = RouteComputer(topo, asg)
    with pytest.raises(LookupError, match="no border|no intra"):
        rc.route("ue", "probe")


def test_hot_potato_picks_nearest_egress(europe):
    topo, asg = europe
    # Add a second 100<->200 border in Prague, much farther from the UE.
    mob_prg = topo.add_node(Node("mob-prg", NodeKind.ROUTER,
                                 offset(PRAGUE, 0.02, 0.0), asn=100))
    topo.connect("mob-vie", "mob-prg")
    topo.connect("mob-prg", "tr-prg")
    rc = RouteComputer(topo, asg)
    result = rc.route("ue", "probe")
    assert "mob-prg" not in result.path   # Vienna egress is closer


def test_ixp_peering_localises_route(europe):
    """The Sec. V-A remedy: a Klagenfurt IXP peering removes the Vienna
    hairpin entirely."""
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    before = rc.route("ue", "probe")
    before_km = topo.geographic_path_length(list(before.path))

    ix = InternetExchange("kla-ix", KLAGENFURT)
    ix.join(100, topo.node("gw-kla"))
    ix.join(300, topo.node("eye-kla"))
    ix.peer(topo, asg, 100, 300)
    rc.invalidate()

    after = rc.route("ue", "probe")
    assert after.as_path == (100, 300)
    after_km = topo.geographic_path_length(list(after.path))
    assert after_km < before_km / 20   # hundreds of km -> a few km


def test_ixp_membership_rules(europe):
    topo, asg = europe
    ix = InternetExchange("kla-ix", KLAGENFURT)
    with pytest.raises(ValueError):    # router from the wrong AS
        ix.join(100, topo.node("eye-kla"))
    with pytest.raises(ValueError):    # too far away for local membership
        ix.join(200, topo.node("tr-prg"))
    ix.join_remote(200, topo.node("tr-prg"))   # explicit remote peering ok
    ix.join(100, topo.node("gw-kla"))
    with pytest.raises(ValueError):    # duplicate membership
        ix.join(100, topo.node("gw-kla"))
    with pytest.raises(KeyError):      # non-member cannot peer
        ix.peer(topo, asg, 100, 300)


def test_traceroute_matches_route_shape(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    result = rc.route("ue", "probe")
    trace = traceroute(topo, result)
    assert trace.hop_count == result.hop_count == 5
    assert trace.hops[0].node_name == "gw-kla"
    assert trace.hops[-1].node_name == "probe"
    # RTTs are cumulative along the path (deterministic trace).
    rtts = [h.rtt_s for h in trace.hops]
    assert all(a < b for a, b in zip(rtts, rtts[1:]))


def test_traceroute_render_table(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    trace = traceroute(topo, rc.route("ue", "probe"))
    table = trace.render_table()
    assert "Hop" in table and "Node" in table
    assert "gw-kla" in table
    assert "5 hops" in table


def test_traceroute_sampled_is_reproducible(europe):
    topo, asg = europe
    # add some load for non-trivial queueing
    topo.link("mob-vie", "tr-vie").utilisation = 0.5
    rc = RouteComputer(topo, asg)
    route = rc.route("ue", "probe")
    t1 = traceroute(topo, route, RngRegistry(5).stream("t"))
    t2 = traceroute(topo, route, RngRegistry(5).stream("t"))
    assert [h.rtt_s for h in t1.hops] == [h.rtt_s for h in t2.hops]


def test_traffic_matrix_loads_links(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    tm = TrafficMatrix()
    tm.add("ue", "probe", units.mbps(2000.0))
    loads = tm.apply(rc)
    assert loads  # at least one link loaded
    assert topo.link("mob-vie", "tr-vie").utilisation > 0.0
    TrafficMatrix.reset(rc)
    assert topo.link("mob-vie", "tr-vie").utilisation == 0.0


def test_traffic_matrix_caps_utilisation(europe):
    topo, asg = europe
    rc = RouteComputer(topo, asg)
    tm = TrafficMatrix()
    tm.add("ue", "probe", units.gbps(100.0))   # way over capacity
    tm.apply(rc)
    for link in topo.links():
        assert link.utilisation < 1.0


def test_traffic_matrix_validation():
    tm = TrafficMatrix()
    with pytest.raises(ValueError):
        tm.add("a", "a", 1e6)
    with pytest.raises(ValueError):
        tm.add("a", "b", 0.0)
    assert len(tm) == 0
    tm.add("a", "b", 5e6)
    assert tm.total_rate_bps == 5e6
