"""Compiled scenarios, the two-tier cache, and the batched executor.

Three contracts:

* **equivalence** — ``CompiledScenario.evaluate`` (with and without a
  shared block cache) reproduces a from-scratch
  ``InfrastructureEvaluation`` summary bit for bit, across scenarios,
  seeds, and every class of sampling-layer override;
* **reuse** — a campaign-only sweep of any width performs exactly one
  scenario build and one kernel precompute, the cache serves memory
  then disk, and a corrupted disk entry is detected and rebuilt;
* **invalidation** — a build-layer edit changes the build key and
  recompiles; evaluating a spec under the wrong compiled world is
  refused.
"""

import pickle

import pytest

from repro.core.compiled import CompiledScenario
from repro.core.evaluation import InfrastructureEvaluation
from repro.fleet import (
    BatchExecutor,
    CompiledScenarioCache,
    SweepAxis,
    SweepSpec,
    run_sweep,
)
from repro.fleet.compiled import COMPILED_DIR
from repro.probes.kernel import precompute_count
from repro.scenarios import build_count, build_key, klagenfurt, skopje

SEED, DENSITY = 42, 2.0

def _sampling_overrides(spec):
    """Every class of sampling-layer override this spec supports."""
    overrides = [
        {"campaign.handover_interruption_s": 0.09,
         "campaign.max_cell_load": 0.9},
        {"campaign.peers.0.air_load": 0.31,
         "campaign.peers.0.sinr_db": 5.0},
        {"campaign.peer_site_index": 2},
        {"description": "same world, different words"},
    ]
    if spec.campaign.extra_load_anchors:
        overrides.append({"campaign.extra_load_anchors.0.1": 0.5})
    if spec.campaign.handover_prob:
        overrides.append({"campaign.handover_prob.0.1": 0.4})
    return tuple(overrides)


def _reference_summary(spec, seed=SEED, density=DENSITY):
    return InfrastructureEvaluation(
        seed=seed, mean_positions_per_cell=density, scenario=spec
    ).run().summary()


# ---------------------------------------------------------------------------
# Equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("base", [klagenfurt, skopje],
                         ids=["klagenfurt", "skopje"])
@pytest.mark.parametrize("seed", [42, 7, 123])
def test_compiled_evaluate_matches_full_pipeline(base, seed):
    spec = base()
    compiled = CompiledScenario(spec, seed=seed, density=DENSITY)
    shared_blocks = {}
    for override in ({},) + _sampling_overrides(spec):
        variant = spec.with_overrides(override) if override else spec
        expected = _reference_summary(variant, seed=seed).canonical_json()
        # Fresh evaluation and block-sharing evaluation must both match.
        assert compiled.evaluate(variant).canonical_json() == expected
        assert compiled.evaluate(
            variant, block_cache=shared_blocks
        ).canonical_json() == expected


def test_compiled_scenario_survives_pickling():
    spec = klagenfurt()
    compiled = pickle.loads(pickle.dumps(
        CompiledScenario(spec, seed=SEED, density=DENSITY)))
    variant = spec.with_overrides(
        {"campaign.extra_load_anchors.0.1": 0.5})
    assert compiled.evaluate(variant).canonical_json() \
        == _reference_summary(variant).canonical_json()


def test_wrong_build_key_is_refused():
    spec = klagenfurt()
    compiled = CompiledScenario(spec, seed=SEED, density=DENSITY)
    edited = spec.with_overrides({"radio.sites.0.load": 0.9})
    with pytest.raises(ValueError, match="build key"):
        compiled.evaluate(edited)


def test_peer_site_index_guard_matches_campaign():
    spec = klagenfurt()
    compiled = CompiledScenario(spec, seed=SEED, density=DENSITY)
    bad = spec.with_overrides({"campaign.peer_site_index": 99})
    with pytest.raises(ValueError, match="peer site index 99 out of "
                                         "range"):
        compiled.evaluate(bad)


# ---------------------------------------------------------------------------
# The cache: memory tier, disk tier, corruption, invalidation
# ---------------------------------------------------------------------------

def test_memory_tier_reuses_and_disk_tier_revives(tmp_path):
    spec = klagenfurt()
    cache = CompiledScenarioCache(tmp_path / COMPILED_DIR)
    first = cache.get(spec, SEED, DENSITY)
    assert cache.stats.builds == 1 and cache.stats.stores == 1
    assert cache.get(spec, SEED, DENSITY) is first
    assert cache.stats.memory_hits == 1

    # A fresh process (modelled by a fresh cache over the same
    # directory) unpickles instead of rebuilding.
    revived = CompiledScenarioCache(tmp_path / COMPILED_DIR)
    compiled = revived.get(spec, SEED, DENSITY)
    assert revived.stats.builds == 0 and revived.stats.disk_hits == 1
    assert compiled.build_key == first.build_key
    variant = spec.with_overrides({"campaign.extra_load_anchors.0.1": 0.4})
    assert compiled.evaluate(variant).canonical_json() \
        == _reference_summary(variant).canonical_json()


def test_sampling_edit_reuses_build_layer_edit_recompiles(tmp_path):
    spec = klagenfurt()
    cache = CompiledScenarioCache(tmp_path / COMPILED_DIR)
    cache.get(spec, SEED, DENSITY)

    sampling = spec.with_overrides({"campaign.max_cell_load": 0.5})
    assert cache.get(sampling, SEED, DENSITY).build_key \
        == build_key(spec, SEED, DENSITY)
    assert cache.stats.builds == 1          # reused, not recompiled

    rebuilt = spec.with_overrides({"radio.sites.0.load": 0.9})
    assert cache.get(rebuilt, SEED, DENSITY).build_key \
        != build_key(spec, SEED, DENSITY)
    assert cache.stats.builds == 2          # build-layer edit rebuilds


@pytest.mark.parametrize("corruption", ["truncate", "flip", "garbage"],
                         ids=["truncated", "bit-flipped", "not-json"])
def test_corrupt_disk_entry_is_detected_and_rebuilt(tmp_path, corruption):
    spec = klagenfurt()
    directory = tmp_path / COMPILED_DIR
    CompiledScenarioCache(directory).get(spec, SEED, DENSITY)
    entry, = directory.rglob("*.pkl")
    raw = entry.read_bytes()
    if corruption == "truncate":
        entry.write_bytes(raw[:len(raw) // 2])
    elif corruption == "flip":
        head, _, blob = raw.partition(b"\n")
        entry.write_bytes(head + b"\n" + blob[:-1]
                          + bytes([blob[-1] ^ 0xFF]))
    else:
        entry.write_bytes(b"not a compiled scenario")

    cache = CompiledScenarioCache(directory)
    compiled = cache.get(spec, SEED, DENSITY)
    assert cache.stats.corrupt == 1 and cache.stats.builds == 1
    assert compiled.evaluate(spec).canonical_json() \
        == _reference_summary(spec).canonical_json()
    # The rebuild re-stored a good entry.
    assert CompiledScenarioCache(directory).get(
        spec, SEED, DENSITY).build_key == compiled.build_key


def test_lru_capacity_bounds_the_memory_tier():
    spec = klagenfurt()
    cache = CompiledScenarioCache(capacity=1)
    cache.get(spec, SEED, DENSITY)
    cache.get(spec, SEED + 1, DENSITY)      # evicts the first
    with cache._lock:
        assert len(cache._memory) == 1
    cache.get(spec, SEED, DENSITY)          # no disk tier: rebuilds
    assert cache.stats.builds == 3 and cache.stats.memory_hits == 0


# ---------------------------------------------------------------------------
# The batched executor inside a sweep
# ---------------------------------------------------------------------------

def _campaign_sweep(n_variants, seeds=(42,)):
    values = tuple(0.03 + 0.001 * i for i in range(n_variants))
    return SweepSpec(
        bases=(klagenfurt(),),
        axes=(SweepAxis("campaign.handover_interruption_s", values),),
        seeds=seeds,
        density=DENSITY,
    )


def test_campaign_only_sweep_builds_exactly_once():
    sweep = _campaign_sweep(100)
    builds0, pre0 = build_count(), precompute_count()
    result = run_sweep(sweep)
    assert len(result) == 100 and result.backend == "batch"
    assert build_count() - builds0 == 1
    assert precompute_count() - pre0 == 1
    assert result.exec_stats["builds_performed"] == 1
    assert result.exec_stats["builds_reused"] == 99


def test_batch_records_are_bit_identical_to_serial():
    sweep = SweepSpec(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis("campaign.handover_interruption_s",
                        (0.03, 0.06)),
              SweepAxis("campaign.peers.0.air_load", (0.31, 0.62)),),
        seeds=(42, 43, 44),
        density=DENSITY,
    )
    batch = run_sweep(sweep, executor="batch")
    serial = run_sweep(sweep, executor="serial")
    assert batch.backend == "batch" and serial.backend == "serial"
    assert [r.to_dict() for r in batch.records] \
        == [r.to_dict() for r in serial.records]


def test_batch_executor_submit_and_disk_backed_sweep(tmp_path):
    sweep = _campaign_sweep(3)
    runs = sweep.expand()
    with BatchExecutor() as executor:
        outcome = executor.submit(runs[0]).result()
    assert outcome.record.run_id == runs[0].run_id

    # A cache directory wires up the compiled store: the second sweep
    # reuses the result cache, the compiled world is on disk for the
    # next cold process.
    first = run_sweep(sweep, cache=tmp_path / "cache")
    assert first.exec_stats["builds_performed"] == 1
    assert (tmp_path / "cache" / COMPILED_DIR).is_dir()
    second = run_sweep(sweep, cache=tmp_path / "cache")
    assert second.exec_stats["result_cache_hits"] == 3
    assert second.exec_stats["builds_performed"] == 0
    assert [r.to_dict() for r in second.records] \
        == [r.to_dict() for r in first.records]
