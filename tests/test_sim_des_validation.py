"""Cross-validation: discrete-event simulation vs closed-form queueing.

The latency models across the repository use M/M/1 and M/D/1 formulas;
these tests rebuild the same queues as *actual discrete-event
simulations* on :mod:`repro.sim` and check that simulated waiting times
converge to the analytic values.  This validates both sides: the
formulas the models rely on and the kernel's event ordering under load.
"""

import numpy as np
import pytest

from repro.net.queueing import md1_wait, mm1_residence, mm1_wait
from repro.sim import Resource, RngRegistry, SeriesMonitor, Simulator, Store


def simulate_queue(rho: float, service_mean: float, *,
                   deterministic_service: bool, customers: int,
                   seed: int) -> SeriesMonitor:
    """One M/M/1 or M/D/1 queue, returning per-customer waiting times."""
    sim = Simulator()
    rng = RngRegistry(seed).stream("des", rho, deterministic_service)
    server = Resource(sim, capacity=1)
    waits = SeriesMonitor("wait")
    interarrival_mean = service_mean / rho

    def customer():
        arrived = sim.now
        req = server.request()
        yield req
        waits.record(sim.now, sim.now - arrived)
        service = service_mean if deterministic_service \
            else float(rng.exponential(service_mean))
        yield sim.timeout(service)
        server.release(req)

    def source():
        for _ in range(customers):
            yield sim.timeout(float(rng.exponential(interarrival_mean)))
            sim.process(customer())

    sim.process(source())
    sim.run()
    return waits


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_mm1_wait_matches_theory(rho):
    service = 1.0
    waits = simulate_queue(rho, service, deterministic_service=False,
                           customers=60_000, seed=11)
    expected = mm1_wait(rho, service)
    assert waits.summary().mean == pytest.approx(expected, rel=0.08)


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_md1_wait_matches_theory(rho):
    service = 1.0
    waits = simulate_queue(rho, service, deterministic_service=True,
                           customers=60_000, seed=13)
    expected = md1_wait(rho, service)
    assert waits.summary().mean == pytest.approx(expected, rel=0.08)


def test_mm1_residence_matches_theory():
    """Waiting + service = residence: E[T] = E[S] / (1 - rho)."""
    rho, service = 0.7, 1.0
    waits = simulate_queue(rho, service, deterministic_service=False,
                           customers=60_000, seed=17)
    residence = waits.summary().mean + service
    assert residence == pytest.approx(mm1_residence(rho, service),
                                      rel=0.08)


def test_mm1_idle_probability():
    """P(W = 0) = 1 - rho: the fraction of customers finding an empty
    system."""
    rho = 0.5
    waits = simulate_queue(rho, 1.0, deterministic_service=False,
                           customers=60_000, seed=19)
    idle_fraction = waits.fraction_below(1e-12)
    assert idle_fraction == pytest.approx(1.0 - rho, abs=0.02)


def test_tandem_queues_additive_means():
    """Two M/M/1 stages in tandem: mean end-to-end residence is the sum
    of per-stage residences (Burke's theorem: the departure process of
    the first stage is again Poisson)."""
    sim = Simulator()
    rng = RngRegistry(23).stream("tandem")
    stage1 = Resource(sim, capacity=1)
    stage2 = Resource(sim, capacity=1)
    totals = SeriesMonitor("total")
    rho1, rho2, s1, s2 = 0.6, 0.5, 1.0, 0.8
    lam = rho1 / s1   # arrival rate; stage-2 load = lam * s2 = 0.6*0.8/1

    def customer():
        arrived = sim.now
        for server, mean in ((stage1, s1), (stage2, s2)):
            req = server.request()
            yield req
            yield sim.timeout(float(rng.exponential(mean)))
            server.release(req)
        totals.record(sim.now, sim.now - arrived)

    def source():
        for _ in range(50_000):
            yield sim.timeout(float(rng.exponential(1.0 / lam)))
            sim.process(customer())

    sim.process(source())
    sim.run()
    expected = (mm1_residence(lam * s1, s1)
                + mm1_residence(lam * s2, s2))
    assert totals.summary().mean == pytest.approx(expected, rel=0.08)


def test_store_as_packet_queue_conserves_packets():
    """A producer/consumer over a bounded Store: every packet produced
    is consumed exactly once, in order."""
    sim = Simulator()
    rng = RngRegistry(29).stream("pkts")
    queue = Store(sim, capacity=16)
    received: list[int] = []

    def producer():
        for seq in range(2_000):
            yield sim.timeout(float(rng.exponential(1.0)))
            yield queue.put(seq)

    def consumer():
        for _ in range(2_000):
            item = yield queue.get()
            received.append(item)
            yield sim.timeout(float(rng.exponential(0.7)))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == list(range(2_000))
