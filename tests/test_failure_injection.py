"""Failure-injection tests: the models under broken infrastructure.

A reproduction substrate is only trustworthy if it degrades the way the
real systems do: a dead macro site shifts users to worse servers, a cut
peering falls back to the transit detour, an overloaded CGNAT melts
latency.  Each test injects one failure and checks the *direction and
mechanism* of the response.
"""

import numpy as np
import pytest

from repro import units
from repro.core import KlagenfurtScenario, LocalPeeringExperiment
from repro.geo.grid import CellId
from repro.net import ASGraph, AutonomousSystem, BGPRouter
from repro.ran import GNodeB, RadioConfig


@pytest.fixture
def scenario():
    return KlagenfurtScenario(seed=42)


# ---------------------------------------------------------------------------
# Radio failures
# ---------------------------------------------------------------------------

def test_gnb_outage_degrades_sinr(scenario):
    """Killing a site: nearby UEs re-select a farther server at lower
    SINR (coverage hole), exactly what a real outage does."""
    position = scenario.grid.cell_center(CellId.from_label("D2"))
    before_gnb, before_sinr = scenario.radio.serving(position)
    assert before_gnb.name == "gnb-d2"
    # Outage: remove the serving site from the network.
    scenario.radio._gnbs.pop("gnb-d2")
    after_gnb, after_sinr = scenario.radio.serving(position)
    assert after_gnb.name != "gnb-d2"
    assert after_sinr < before_sinr


def test_gnb_outage_raises_campaign_latency(scenario):
    """The campaign still runs through the outage; mean RTL rises in
    the orphaned cell (HARQ at the degraded SINR)."""
    cell = CellId.from_label("D2")
    position = scenario.grid.cell_center(cell)
    campaign = scenario.campaign(2.0)
    before = np.mean([campaign.sample_rtt(position, cell, "peer-1")
                      for _ in range(60)])
    scenario.radio._gnbs.pop("gnb-d2")
    after = np.mean([campaign.sample_rtt(position, cell, "peer-1")
                     for _ in range(60)])
    assert after > before


def test_overloaded_gnb_rejected():
    with pytest.raises(ValueError):
        GNodeB("sick", location=None or
               __import__("repro.geo", fromlist=["KLAGENFURT"]).KLAGENFURT,
               config=RadioConfig.nr_5g(), load=1.0)


# ---------------------------------------------------------------------------
# Routing failures
# ---------------------------------------------------------------------------

def test_cut_transit_link_breaks_reachability(scenario):
    """Cutting the only Prague peering link: BGP still *selects* the AS
    path, but the stitcher reports the missing border honestly instead
    of silently rerouting."""
    scenario.topology.remove_link("cdn77-vie", "zet-prg")
    scenario.routes.invalidate()
    with pytest.raises(LookupError, match="no border|no intra"):
        scenario.routes.route("ue-c2", "probe-uni")


def test_depeering_reintroduces_detour(scenario):
    """Local peering applied, then torn down (the paper's 'conflicting
    business interests'): the detour comes back."""
    experiment = LocalPeeringExperiment(scenario)
    outcome = experiment.run()
    assert outcome.detour_eliminated
    # The eyeball de-peers the mobile operator.
    from repro.core.scenario import AS_EYEBALL, AS_MOBILE
    scenario.asgraph.remove_peering(AS_MOBILE, AS_EYEBALL)
    scenario.routes.invalidate()
    route = scenario.routes.route("ue-c2", "probe-uni")
    assert len(route.as_path) == 6     # the Table I chain again


def test_redundant_border_survives_single_cut():
    """With two border links between a pair of ASes, cutting one leaves
    connectivity through the other (hot-potato picks the survivor)."""
    from repro.geo import GeoPoint, KLAGENFURT, VIENNA
    from repro.net import Node, NodeKind, RouteComputer, Topology
    topo = Topology()
    asg = ASGraph()
    asg.add(AutonomousSystem(1, "src-as"))
    asg.add(AutonomousSystem(2, "dst-as"))
    asg.set_customer_of(1, 2)
    a = topo.add_node(Node("a", NodeKind.ROUTER, KLAGENFURT, asn=1))
    b1 = topo.add_node(Node("b1", NodeKind.ROUTER, VIENNA, asn=1))
    b2 = topo.add_node(Node("b2", NodeKind.ROUTER,
                            GeoPoint(47.0, 15.4), asn=1))
    c1 = topo.add_node(Node("c1", NodeKind.ROUTER,
                            GeoPoint(48.21, 16.38), asn=2))
    c2 = topo.add_node(Node("c2", NodeKind.ROUTER,
                            GeoPoint(47.01, 15.41), asn=2))
    dst = topo.add_node(Node("dst", NodeKind.SERVER,
                             GeoPoint(47.5, 16.0), asn=2))
    topo.connect(a, b1)
    topo.connect(a, b2)
    topo.connect(b1, c1)     # border 1 (Vienna)
    topo.connect(b2, c2)     # border 2 (Graz)
    topo.connect(c1, dst)
    topo.connect(c2, dst)
    routes = RouteComputer(topo, asg)
    primary = routes.route("a", "dst")
    assert "b2" in primary.path          # Graz egress is nearer
    topo.remove_link("b2", "c2")
    routes.invalidate()
    fallback = routes.route("a", "dst")
    assert "b1" in fallback.path         # survivor carries the traffic


# ---------------------------------------------------------------------------
# Core failures
# ---------------------------------------------------------------------------

def test_cgnat_overload_melts_latency(scenario):
    """Pushing the Vienna CGNAT towards saturation: the campaign's
    sampled RTTs through it inflate sharply (M/M/1 blow-up)."""
    cell = CellId.from_label("C2")
    position = scenario.grid.cell_center(cell)
    campaign = scenario.campaign(2.0)
    before = np.mean([campaign.sample_rtt(position, cell, "probe-uni")
                      for _ in range(60)])
    vienna = campaign.config.gateways["vienna"]
    overloaded = vienna.upf.with_load(0.97)
    campaign.config.gateways["vienna"] = type(vienna)(
        vienna.name, vienna.node_name, overloaded)
    after = np.mean([campaign.sample_rtt(position, cell, "probe-uni")
                     for _ in range(60)])
    assert after > before + units.ms(20.0)


def test_slice_admission_guards_against_failure_cascade():
    """Admission control refuses a slice whose own demand exceeds its
    reservation — the config error that would otherwise melt a pool."""
    from repro.cn import NetworkSlice, SliceManager, SliceType
    mgr = SliceManager(units.gbps(10.0))
    with pytest.raises(ValueError):
        mgr.admit(NetworkSlice("greedy", SliceType.EMBB, 0.1,
                               offered_load_bps=units.gbps(5.0)))


def test_hypervisor_single_site_has_no_backup():
    """Resilience accounting is honest: one hypervisor means infinite
    backup latency, not a silently reused primary."""
    from repro.cn import PlacementObjective
    from repro.core import HypervisorPlacementStudy
    study = HypervisorPlacementStudy()
    result = study.planner.place(1, PlacementObjective.RESILIENCE)
    assert result.worst_backup_latency_s == float("inf")
