"""Tests for the dataset-analysis helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import CellId, GeoPoint, Grid
from repro.probes import MeasurementDataset
from repro.probes.analysis import Cdf, DatasetAnalysis


@pytest.fixture
def grid():
    return Grid(GeoPoint(46.653, 14.255), cell_size_m=1000.0, cols=6,
                rows=7)


def build_dataset():
    ds = MeasurementDataset()
    fast = CellId.from_label("C1")
    slow = CellId.from_label("C3")
    for i in range(20):
        ds.add(float(i), fast, "peer-1", 0.060 + 0.001 * (i % 4))
        ds.add(float(i), slow, "probe", 0.100 + 0.002 * (i % 5))
    return ds


# ---------------------------------------------------------------------------
# Cdf
# ---------------------------------------------------------------------------

def test_cdf_basic_properties():
    cdf = Cdf.of(np.array([1.0, 2.0, 3.0, 4.0]))
    assert cdf.at(0.5) == 0.0
    assert cdf.at(2.0) == pytest.approx(0.5)
    assert cdf.at(10.0) == 1.0
    assert cdf.quantile(0.5) == 2.0
    assert cdf.quantile(1.0) == 4.0


def test_cdf_validation():
    with pytest.raises(ValueError):
        Cdf.of(np.array([]))
    cdf = Cdf.of(np.array([1.0]))
    with pytest.raises(ValueError):
        cdf.quantile(0.0)
    with pytest.raises(ValueError):
        cdf.quantile(1.5)


@given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=100))
def test_cdf_is_monotone(samples):
    cdf = Cdf.of(np.array(samples))
    probes = np.linspace(min(samples) - 1, max(samples) + 1, 17)
    values = [cdf.at(float(p)) for p in probes]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[0] == 0.0 and values[-1] == 1.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                          allow_nan=False), min_size=2, max_size=100),
       st.floats(min_value=0.05, max_value=1.0))
def test_cdf_quantile_at_round_trip(samples, q):
    cdf = Cdf.of(np.array(samples))
    value = cdf.quantile(q)
    # at(quantile(q)) >= q by definition of the empirical quantile.
    assert cdf.at(value) >= q - 1e-12


# ---------------------------------------------------------------------------
# DatasetAnalysis
# ---------------------------------------------------------------------------

def test_analysis_requires_samples(grid):
    with pytest.raises(ValueError):
        DatasetAnalysis(grid, MeasurementDataset())


def test_cell_cdf_and_overall(grid):
    analysis = DatasetAnalysis(grid, build_dataset())
    fast = analysis.cell_cdf(CellId.from_label("C1"))
    slow = analysis.cell_cdf(CellId.from_label("C3"))
    assert fast.quantile(0.5) < slow.quantile(0.5)
    overall = analysis.overall_cdf()
    assert overall.values.size == 40
    with pytest.raises(ValueError):
        analysis.cell_cdf(CellId.from_label("A1"))


def test_percentile_matrix(grid):
    analysis = DatasetAnalysis(grid, build_dataset())
    p95 = analysis.percentile_matrix_ms(0.95)
    p50 = analysis.percentile_matrix_ms(0.50)
    c3 = CellId.from_label("C3")
    assert p95[c3.row, c3.col] >= p50[c3.row, c3.col]
    assert p50[0, 0] == 0.0            # unmeasured cell masked
    with pytest.raises(ValueError):
        analysis.percentile_matrix_ms(2.0)


def test_violation_matrix(grid):
    analysis = DatasetAnalysis(grid, build_dataset())
    violations = analysis.violation_matrix(0.020)
    c1, c3 = CellId.from_label("C1"), CellId.from_label("C3")
    assert violations[c1.row, c1.col] == 1.0    # all over 20 ms
    assert violations[c3.row, c3.col] == 1.0
    loose = analysis.violation_matrix(0.080)
    assert loose[c1.row, c1.col] == 0.0
    assert loose[c3.row, c3.col] == 1.0
    with pytest.raises(ValueError):
        analysis.violation_matrix(0.0)


def test_worst_cells(grid):
    analysis = DatasetAnalysis(grid, build_dataset())
    worst = analysis.worst_cells(1)
    assert worst[0][0] == CellId.from_label("C3")
    assert len(analysis.worst_cells(10)) == 2   # only two measured
    with pytest.raises(ValueError):
        analysis.worst_cells(0)


def test_target_means_and_gap(grid):
    analysis = DatasetAnalysis(grid, build_dataset())
    means = analysis.target_means_s()
    assert set(means) == {"peer-1", "probe"}
    assert means["probe"] > means["peer-1"]
    gap = analysis.wired_vs_peer_gap_s({"probe"})
    assert gap == pytest.approx(means["probe"] - means["peer-1"])
    with pytest.raises(ValueError):
        analysis.wired_vs_peer_gap_s({"nonexistent"})


def test_analysis_on_real_campaign():
    """End-to-end: analysis over the reproduced campaign dataset."""
    from repro.core import KlagenfurtScenario
    scenario = KlagenfurtScenario(seed=42)
    dataset = scenario.run_campaign(2.0)
    analysis = DatasetAnalysis(scenario.grid, dataset)
    # Every measured sample violates the 20 ms AR budget.
    violations = analysis.violation_matrix(0.020)
    for cell in dataset.cells_observed():
        assert violations[cell.row, cell.col] == 1.0
    # The p95 field dominates the median field.
    p95 = analysis.percentile_matrix_ms(0.95)
    p50 = analysis.percentile_matrix_ms(0.50)
    assert (p95 >= p50).all()
