"""Tests for the AS graph and valley-free path selection."""

import pytest

from repro.net import ASGraph, ASKind, AutonomousSystem, BGPRouter, RouteClass


def build_graph(*asns):
    g = ASGraph()
    for asn in asns:
        g.add(AutonomousSystem(asn=asn, name=f"as{asn}"))
    return g


# ---------------------------------------------------------------------------
# ASGraph structure
# ---------------------------------------------------------------------------

def test_duplicate_asn_rejected():
    g = build_graph(1)
    with pytest.raises(ValueError):
        g.add(AutonomousSystem(asn=1, name="dup"))


def test_as_validations():
    with pytest.raises(ValueError):
        AutonomousSystem(asn=0, name="x")
    with pytest.raises(ValueError):
        AutonomousSystem(asn=1, name="")


def test_relationship_bookkeeping():
    g = build_graph(1, 2, 3)
    g.set_customer_of(customer=1, provider=2)
    g.set_peers(2, 3)
    assert g.providers_of(1) == {2}
    assert g.customers_of(2) == {1}
    assert g.peers_of(2) == {3}
    assert g.relationship(1, 2) == "c2p"
    assert g.relationship(2, 1) == "p2c"
    assert g.relationship(2, 3) == "p2p"
    assert g.relationship(1, 3) is None


def test_conflicting_relationships_rejected():
    g = build_graph(1, 2)
    g.set_customer_of(1, 2)
    with pytest.raises(ValueError):
        g.set_peers(1, 2)
    with pytest.raises(ValueError):
        g.set_customer_of(2, 1)   # mutual transit


def test_self_relationships_rejected():
    g = build_graph(1)
    with pytest.raises(ValueError):
        g.set_customer_of(1, 1)
    with pytest.raises(ValueError):
        g.set_peers(1, 1)


def test_unknown_as_rejected():
    g = build_graph(1)
    with pytest.raises(KeyError):
        g.set_customer_of(1, 99)
    with pytest.raises(KeyError):
        g.peers_of(99)


def test_remove_peering():
    g = build_graph(1, 2)
    g.set_peers(1, 2)
    g.remove_peering(1, 2)
    assert g.relationship(1, 2) is None
    with pytest.raises(KeyError):
        g.remove_peering(1, 2)


def test_hierarchy_cycle_detection():
    g = build_graph(1, 2, 3)
    g.set_customer_of(1, 2)
    g.set_customer_of(2, 3)
    g.set_customer_of(3, 1)   # cycle!
    with pytest.raises(ValueError, match="cycle"):
        g.validate_hierarchy()


# ---------------------------------------------------------------------------
# BGP route selection
# ---------------------------------------------------------------------------

@pytest.fixture
def diamond():
    """Two stub ASes (10, 20) under two transits (1, 2) that peer.

         1 ======= 2        (p2p)
         |         |
        10        20        (customers)
    """
    g = build_graph(1, 2, 10, 20)
    g.set_customer_of(10, 1)
    g.set_customer_of(20, 2)
    g.set_peers(1, 2)
    return g


def test_route_through_peering(diamond):
    bgp = BGPRouter(diamond)
    path = bgp.as_path(10, 20)
    assert path == (10, 1, 2, 20)


def test_route_classes(diamond):
    bgp = BGPRouter(diamond)
    # Transit 1 reaches its own customer via a customer route.
    assert bgp.route(1, 10).route_class == RouteClass.CUSTOMER
    # Transit 2 reaches 10 via its peer 1.
    assert bgp.route(2, 10).route_class == RouteClass.PEER
    # Stub 20 reaches 10 via its provider.
    assert bgp.route(20, 10).route_class == RouteClass.PROVIDER
    # Self route.
    assert bgp.route(10, 10).route_class == RouteClass.SELF


def test_no_valley_through_two_peers():
    """A path peer->peer->peer is invalid; with only peerings at the top,
    a stub behind one peer cannot transit a middle AS to a third peer."""
    g = build_graph(1, 2, 3, 10, 30)
    g.set_peers(1, 2)
    g.set_peers(2, 3)
    g.set_customer_of(10, 1)
    g.set_customer_of(30, 3)
    bgp = BGPRouter(g)
    # 10 -> 1 -> 2 -> 3 -> 30 would need two peer edges: forbidden.
    assert bgp.route(10, 30) is None


def test_customer_route_preferred_over_peer():
    """If a transit can reach a destination via a customer chain or a
    peer, it must pick the customer route even when longer."""
    g = build_graph(1, 2, 5, 10)
    # 1 can reach 10: customer chain 1 <- 5 <- 10 (two hops)
    g.set_customer_of(5, 1)
    g.set_customer_of(10, 5)
    # ... or via peer 2 which has 10 as a direct customer (one hop).
    g.set_peers(1, 2)
    g.set_customer_of(10, 2)
    bgp = BGPRouter(g)
    route = bgp.route(1, 10)
    assert route.route_class == RouteClass.CUSTOMER
    assert route.as_path == (1, 5, 10)


def test_shorter_path_wins_within_class():
    g = build_graph(1, 2, 3, 10)
    # Two provider chains from 10's provider 1 down to dest 3... build:
    # 10 buys from 1; 1 peers with 2 and 3; 2 is provider of 3.
    g.set_customer_of(10, 1)
    g.set_peers(1, 2)
    g.set_peers(1, 3)
    g.set_customer_of(3, 2)
    bgp = BGPRouter(g)
    # 10 -> 1 -> 3 (peer, then down): length 2 beats 10 -> 1 -> 2 -> 3.
    assert bgp.as_path(10, 3) == (10, 1, 3)


def test_tie_break_lowest_next_hop():
    g = build_graph(5, 6, 10, 20)
    # 20 reachable from 10 via two equal-length provider paths.
    g.set_customer_of(10, 5)
    g.set_customer_of(10, 6)
    g.set_customer_of(20, 5)
    g.set_customer_of(20, 6)
    bgp = BGPRouter(g)
    assert bgp.as_path(10, 20) == (10, 5, 20)


def test_unreachable_destination():
    g = build_graph(1, 2)
    bgp = BGPRouter(g)
    assert bgp.route(1, 2) is None
    with pytest.raises(LookupError):
        bgp.as_path(1, 2)


def test_unknown_endpoints():
    g = build_graph(1)
    bgp = BGPRouter(g)
    with pytest.raises(KeyError):
        bgp.route(99, 1)
    with pytest.raises(KeyError):
        bgp.routes_to(99)


def test_invalidate_picks_up_new_peering(diamond):
    bgp = BGPRouter(diamond)
    assert bgp.as_path(10, 20) == (10, 1, 2, 20)
    # Direct peering between the stubs (the paper's local peering fix).
    diamond.set_peers(10, 20)
    bgp.invalidate()
    assert bgp.as_path(10, 20) == (10, 20)


def test_routes_are_valley_free(diamond):
    bgp = BGPRouter(diamond)
    for src in (1, 2, 10, 20):
        for dst in (1, 2, 10, 20):
            route = bgp.route(src, dst)
            if route is not None:
                assert bgp.is_valley_free(route.as_path), route


def test_is_valley_free_rejects_bad_paths(diamond):
    bgp = BGPRouter(diamond)
    # up after down: 1 -> 10 (p2c) then 10 -> 1 (c2p) again
    assert not bgp.is_valley_free((1, 10, 1))
    # two peer links in a row is a valley
    g = build_graph(1, 2, 3)
    g.set_peers(1, 2)
    g.set_peers(2, 3)
    bgp2 = BGPRouter(g)
    assert not bgp2.is_valley_free((1, 2, 3))
    # unrelated ASes
    assert not bgp2.is_valley_free((1, 3))
    # trivial paths are fine
    assert bgp2.is_valley_free((1,))


def test_large_random_hierarchy_all_routes_valley_free():
    """Property check on a 60-AS synthetic hierarchy."""
    import numpy as np
    rng = np.random.default_rng(42)
    g = ASGraph()
    tiers = {0: [1, 2, 3], 1: list(range(10, 25)), 2: list(range(100, 142))}
    for tier in tiers.values():
        for asn in tier:
            g.add(AutonomousSystem(asn=asn, name=f"as{asn}",
                                   kind=ASKind.TRANSIT))
    for a in tiers[0]:
        for b in tiers[0]:
            if a < b:
                g.set_peers(a, b)
    for asn in tiers[1]:
        for provider in rng.choice(tiers[0], size=2, replace=False):
            g.set_customer_of(asn, int(provider))
    for asn in tiers[2]:
        for provider in rng.choice(tiers[1], size=2, replace=False):
            g.set_customer_of(asn, int(provider))
    bgp = BGPRouter(g)
    stubs = tiers[2][:10]
    for src in stubs:
        for dst in stubs:
            if src == dst:
                continue
            route = bgp.route(src, dst)
            assert route is not None, (src, dst)
            assert bgp.is_valley_free(route.as_path), route
            assert route.as_path[0] == src and route.as_path[-1] == dst
