"""Property-based tests of interdomain routing on randomized worlds.

Hypothesis generates random AS hierarchies with random router-level
footprints; every resolved route must satisfy structural invariants no
matter the draw:

* the router path starts at the source and ends at the destination;
* consecutive routers are physically linked;
* the router path's AS sequence matches the BGP AS path (contiguous
  runs, no interleaving);
* the AS path is valley-free;
* route resolution is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geo import GeoPoint
from repro.net import (
    ASGraph,
    AutonomousSystem,
    Node,
    NodeKind,
    RouteComputer,
    Topology,
)


def build_world(seed: int, n_stubs: int):
    """A random two-tier internet.

    Tier 0: three transits peering with each other; each stub AS buys
    from 1-2 transits; each AS has 1-3 routers at random European
    coordinates; inter-AS links connect random router pairs of related
    ASes.
    """
    rng = np.random.default_rng(seed)
    topo = Topology(f"world-{seed}")
    asg = ASGraph()
    transits = [10, 20, 30]
    stubs = [100 + i for i in range(n_stubs)]
    for asn in transits + stubs:
        asg.add(AutonomousSystem(asn, f"as{asn}"))
    for a in transits:
        for b in transits:
            if a < b:
                asg.set_peers(a, b)

    routers: dict[int, list[Node]] = {}

    def add_routers(asn: int) -> None:
        count = int(rng.integers(1, 4))
        routers[asn] = []
        for i in range(count):
            node = topo.add_node(Node(
                f"r{asn}-{i}", NodeKind.ROUTER,
                GeoPoint(float(rng.uniform(42.0, 52.0)),
                         float(rng.uniform(8.0, 26.0))),
                asn=asn))
            routers[asn].append(node)
        # intra-AS ring (guarantees internal connectivity)
        ring = routers[asn]
        for i in range(len(ring) - 1):
            topo.connect(ring[i], ring[i + 1])

    for asn in transits + stubs:
        add_routers(asn)

    def interconnect(a: int, b: int) -> None:
        ra = routers[a][int(rng.integers(0, len(routers[a])))]
        rb = routers[b][int(rng.integers(0, len(routers[b])))]
        if not topo.has_link(ra.name, rb.name):
            topo.connect(ra, rb)

    for a in transits:
        for b in transits:
            if a < b:
                interconnect(a, b)
    for stub in stubs:
        providers = rng.choice(transits,
                               size=int(rng.integers(1, 3)),
                               replace=False)
        for provider in providers:
            asg.set_customer_of(stub, int(provider))
            interconnect(stub, int(provider))

    return topo, asg, routers, stubs


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_stubs=st.integers(min_value=2, max_value=6))
def test_routes_satisfy_structural_invariants(seed, n_stubs):
    topo, asg, routers, stubs = build_world(seed, n_stubs)
    rc = RouteComputer(topo, asg)
    bgp = rc.bgp
    src = routers[stubs[0]][0].name
    dst = routers[stubs[-1]][-1].name
    result = rc.route(src, dst)

    # endpoints
    assert result.path[0] == src
    assert result.path[-1] == dst
    # physical continuity
    for a, b in zip(result.path, result.path[1:]):
        assert topo.has_link(a, b), f"gap {a}--{b}"
    # AS sequence of the router path == BGP AS path (contiguous runs)
    as_sequence = []
    for name in result.path:
        asn = topo.node(name).asn
        if not as_sequence or as_sequence[-1] != asn:
            as_sequence.append(asn)
    assert tuple(as_sequence) == result.as_path
    # valley-free policy path
    assert bgp.is_valley_free(result.as_path)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_route_resolution_is_deterministic(seed):
    topo1, asg1, routers1, stubs1 = build_world(seed, 4)
    topo2, asg2, routers2, stubs2 = build_world(seed, 4)
    rc1 = RouteComputer(topo1, asg1)
    rc2 = RouteComputer(topo2, asg2)
    src = routers1[stubs1[0]][0].name
    dst = routers1[stubs1[-1]][-1].name
    assert rc1.route(src, dst).path == rc2.route(src, dst).path


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_latency_positive_and_hops_bounded(seed):
    topo, asg, routers, stubs = build_world(seed, 4)
    rc = RouteComputer(topo, asg)
    src = routers[stubs[0]][0].name
    dst = routers[stubs[-1]][-1].name
    result = rc.route(src, dst)
    latency = topo.path_latency(list(result.path)).total
    assert latency > 0.0
    # Bounded by the total router population.
    assert result.hop_count <= topo.node_count
