"""Tests for the measurement framework (probes, datasets, stats, ping)."""

import numpy as np
import pytest

from repro.geo import CellId, GeoPoint, Grid
from repro.probes import (
    CellStatistics,
    MeasurementDataset,
    MeasurementRecord,
    Probe,
    ProbeKind,
    ProbeRegistry,
)


@pytest.fixture
def grid():
    return Grid(GeoPoint(46.653, 14.255), cell_size_m=1000.0, cols=6, rows=7)


# ---------------------------------------------------------------------------
# ProbeRegistry
# ---------------------------------------------------------------------------

def test_probe_registry_register_and_lookup():
    reg = ProbeRegistry()
    p = reg.register(Probe(1, "anchor", "node-a", GeoPoint(46.62, 14.30),
                           ProbeKind.ANCHOR))
    assert reg.probe(1) is p
    assert reg.by_name("anchor") is p
    assert len(reg) == 1
    assert reg.anchors() == [p]


def test_probe_registry_duplicates_rejected():
    reg = ProbeRegistry()
    reg.register(Probe(1, "a", "n1", GeoPoint(46.62, 14.30)))
    with pytest.raises(ValueError):
        reg.register(Probe(1, "b", "n2", GeoPoint(46.62, 14.30)))
    with pytest.raises(ValueError):
        reg.register(Probe(2, "a", "n2", GeoPoint(46.62, 14.30)))


def test_probe_registry_missing_lookups():
    reg = ProbeRegistry()
    with pytest.raises(KeyError):
        reg.probe(9)
    with pytest.raises(KeyError):
        reg.by_name("ghost")
    with pytest.raises(LookupError):
        reg.nearest(GeoPoint(46.0, 14.0))


def test_probe_nearest_and_in_cell(grid):
    reg = ProbeRegistry()
    inside = grid.cell_center(CellId.from_label("C3"))
    far = grid.cell_center(CellId.from_label("F7"))
    reg.register(Probe(1, "near", "n1", inside))
    reg.register(Probe(2, "far", "n2", far))
    assert reg.nearest(inside).name == "near"
    assert [p.name for p in reg.in_cell(grid, CellId.from_label("C3"))] \
        == ["near"]


def test_probe_validation():
    with pytest.raises(ValueError):
        Probe(-1, "x", "n", GeoPoint(0, 0))
    with pytest.raises(ValueError):
        Probe(1, "", "n", GeoPoint(0, 0))


# ---------------------------------------------------------------------------
# MeasurementDataset
# ---------------------------------------------------------------------------

def test_dataset_add_and_query(grid):
    ds = MeasurementDataset()
    c3 = CellId.from_label("C3")
    b2 = CellId.from_label("B2")
    ds.add(0.0, c3, "probe", 0.065)
    ds.add(1.0, c3, "probe", 0.067)
    ds.add(2.0, b2, "peer-1", 0.050)
    assert len(ds) == 3
    assert ds.rtts_in(c3).tolist() == [0.065, 0.067]
    assert ds.cells_observed() == sorted([b2, c3])


def test_dataset_negative_rtt_rejected():
    ds = MeasurementDataset()
    with pytest.raises(ValueError):
        ds.add(0.0, CellId(0, 0), "t", -1.0)
    with pytest.raises(ValueError):
        MeasurementRecord(0.0, CellId(0, 0), "t", -1.0)


def test_dataset_growth():
    ds = MeasurementDataset()
    cell = CellId(0, 0)
    for i in range(5000):
        ds.add(float(i), cell, "t", 0.05)
    assert len(ds) == 5000
    assert ds.rtts.shape == (5000,)


def test_dataset_from_columns_equals_add_loop():
    """The bulk constructor must build exactly the state ``add`` does."""
    rows = [(0.0, CellId.from_label("C3"), "probe", 0.065),
            (1.0, CellId.from_label("C3"), "peer-1", 0.050),
            (2.0, CellId.from_label("B2"), "probe", 0.048),
            (3.0, CellId.from_label("B2"), "peer-1", 0.061)]
    reference = MeasurementDataset()
    for time, cell, target, rtt in rows:
        reference.add(time, cell, target, rtt)

    bulk = MeasurementDataset.from_columns(
        np.array([r[0] for r in rows]),
        np.array([r[1].col for r in rows], dtype=np.int32),
        np.array([r[1].row for r in rows], dtype=np.int32),
        np.array([0, 1, 0, 1], dtype=np.int32),
        ["probe", "peer-1"],                # first-appearance order
        np.array([r[3] for r in rows]))
    assert len(bulk) == len(reference)
    assert bulk.rtts.tolist() == reference.rtts.tolist()
    assert bulk.times.tolist() == reference.times.tolist()
    assert [r.target for r in bulk.records()] \
        == [r.target for r in reference.records()]
    assert bulk.cells_observed() == reference.cells_observed()
    # Arrays are copied, and the dataset stays appendable.
    bulk.add(4.0, CellId.from_label("A1"), "probe", 0.02)
    assert len(bulk) == 5


def test_dataset_from_columns_validates():
    times = np.zeros(2)
    cols = np.zeros(2, dtype=np.int32)
    rows = np.zeros(2, dtype=np.int32)
    with pytest.raises(ValueError, match="share one length"):
        MeasurementDataset.from_columns(
            times, cols, rows, np.zeros(3, dtype=np.int32), ["t"],
            np.zeros(2))
    with pytest.raises(ValueError, match="non-negative"):
        MeasurementDataset.from_columns(
            times, cols, rows, np.zeros(2, dtype=np.int32), ["t"],
            np.array([0.1, -0.1]))
    with pytest.raises(ValueError, match="out of range"):
        MeasurementDataset.from_columns(
            times, cols, rows, np.array([0, 1], dtype=np.int32), ["t"],
            np.zeros(2))
    with pytest.raises(ValueError, match="unique"):
        MeasurementDataset.from_columns(
            times, cols, rows, np.zeros(2, dtype=np.int32), ["t", "t"],
            np.zeros(2))
    # Empty columns give a working, appendable dataset.
    empty = MeasurementDataset.from_columns(
        np.empty(0), np.empty(0, dtype=np.int32),
        np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int32), [],
        np.empty(0))
    assert len(empty) == 0
    empty.add(0.0, CellId(0, 0), "t", 0.05)
    assert len(empty) == 1


def test_dataset_records_round_trip():
    ds = MeasurementDataset()
    ds.add(1.5, CellId.from_label("C2"), "probe", 0.0655)
    rec = next(ds.records())
    assert rec.cell.label == "C2"
    assert rec.target == "probe"
    assert rec.rtt_s == pytest.approx(0.0655)


def test_dataset_csv_round_trip(tmp_path):
    ds = MeasurementDataset()
    ds.add(0.0, CellId.from_label("C1"), "probe", 0.0612)
    ds.add(5.0, CellId.from_label("E5"), "peer-1", 0.1043)
    path = tmp_path / "campaign.csv"
    ds.save_csv(path)
    loaded = MeasurementDataset.load_csv(path)
    assert len(loaded) == 2
    assert loaded.rtts_in(CellId.from_label("C1"))[0] == pytest.approx(
        0.0612, abs=1e-6)


def test_dataset_csv_missing_columns(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ValueError, match="missing columns"):
        MeasurementDataset.load_csv(path)


def test_dataset_readonly_views():
    ds = MeasurementDataset()
    ds.add(0.0, CellId(0, 0), "t", 0.05)
    with pytest.raises(ValueError):
        ds.rtts[0] = 9.9


# ---------------------------------------------------------------------------
# CellStatistics
# ---------------------------------------------------------------------------

def fill(ds, cell, values):
    for i, v in enumerate(values):
        ds.add(float(i), cell, "t", v)


def test_stats_masking_below_threshold(grid):
    ds = MeasurementDataset()
    full = CellId.from_label("C3")
    sparse = CellId.from_label("A1")
    fill(ds, full, [0.06] * 12)
    fill(ds, sparse, [0.06] * 9)     # below the 10-sample threshold
    stats = CellStatistics(grid, ds)
    assert not stats.aggregate(full).masked
    agg = stats.aggregate(sparse)
    assert agg.masked and agg.mean_s == 0.0 and agg.std_s == 0.0
    assert agg.count == 9
    assert sparse in [a.cell for a in stats.masked_cells()]


def test_stats_mean_and_std(grid):
    ds = MeasurementDataset()
    cell = CellId.from_label("C3")
    values = [0.060, 0.062, 0.064, 0.066] * 5
    fill(ds, cell, values)
    stats = CellStatistics(grid, ds)
    agg = stats.aggregate(cell)
    assert agg.mean_s == pytest.approx(np.mean(values))
    assert agg.std_s == pytest.approx(np.std(values, ddof=1))


def test_stats_extreme_cells(grid):
    ds = MeasurementDataset()
    lo, hi = CellId.from_label("C1"), CellId.from_label("C3")
    steady, wild = CellId.from_label("B3"), CellId.from_label("E5")
    fill(ds, lo, [0.061] * 12)
    fill(ds, hi, [0.110] * 12)
    fill(ds, steady, [0.070 + 0.0001 * i for i in range(12)])
    fill(ds, wild, [0.060, 0.150] * 6)
    stats = CellStatistics(grid, ds)
    assert stats.min_mean_cell().cell == lo
    assert stats.max_mean_cell().cell == hi
    assert stats.min_std_cell().cell in (lo, hi, steady)  # zeros tie
    assert stats.max_std_cell().cell == wild


def test_stats_overall_mean_excludes_masked(grid):
    ds = MeasurementDataset()
    fill(ds, CellId.from_label("C1"), [0.060] * 12)
    fill(ds, CellId.from_label("C2"), [0.080] * 12)
    fill(ds, CellId.from_label("A1"), [9.0] * 3)   # masked outlier
    stats = CellStatistics(grid, ds)
    assert stats.overall_mean_s() == pytest.approx(0.070)


def test_stats_matrices(grid):
    ds = MeasurementDataset()
    fill(ds, CellId.from_label("C1"), [0.061] * 12)
    stats = CellStatistics(grid, ds)
    mat = stats.mean_matrix_ms()
    assert mat.shape == (7, 6)
    assert mat[0, 2] == pytest.approx(61.0)
    assert mat[6, 5] == 0.0  # untouched cell masked as 0.0


def test_stats_empty_dataset_raises(grid):
    stats = CellStatistics(grid, MeasurementDataset())
    with pytest.raises(ValueError):
        stats.overall_mean_s()
    with pytest.raises(ValueError):
        stats.min_mean_cell()


def test_stats_validation(grid):
    with pytest.raises(ValueError):
        CellStatistics(grid, MeasurementDataset(), min_samples=0)
    stats = CellStatistics(grid, MeasurementDataset())
    with pytest.raises(KeyError):
        stats.aggregate(CellId(20, 20))
