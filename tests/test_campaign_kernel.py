"""Kernel-vs-scalar equivalence for the drive-test campaign.

The measurement kernel (probes.kernel) must be *observationally
invisible*: for any scenario and seed, ``campaign.run()`` (kernel) and
``campaign.run(kernel=False)`` (the scalar reference pipeline) produce
byte-for-byte identical datasets.  These tests are the enforcement
mechanism for every precompute/vectorisation trick the kernel plays.
"""

import numpy as np
import pytest

from repro.probes.kernel import CampaignKernel
from repro.scenarios import build, get


def run_both(name: str, seed: int, density: float):
    scalar = build(get(name), seed=seed).campaign(density).run(kernel=False)
    kernel = build(get(name), seed=seed).campaign(density).run()
    return scalar, kernel


def assert_datasets_identical(a, b):
    assert len(a) == len(b)
    assert (a.times == b.times).all()
    assert (a.rtts == b.rtts).all()
    recs_a, recs_b = list(a.records()), list(b.records())
    for ra, rb in zip(recs_a, recs_b):
        assert ra == rb


@pytest.mark.parametrize("scenario", ["klagenfurt", "skopje"])
@pytest.mark.parametrize("seed", [7, 42, 123])
def test_kernel_bitwise_identical_to_scalar(scenario, seed):
    scalar, kernel = run_both(scenario, seed, density=2.0)
    assert_datasets_identical(scalar, kernel)


def test_kernel_identical_at_full_density():
    scalar, kernel = run_both("klagenfurt", 42, density=6.0)
    assert_datasets_identical(scalar, kernel)


def test_kernel_identical_under_spec_overrides():
    """Breakout reassignment and handover knobs flow through the kernel."""
    spec = get("klagenfurt").with_overrides({
        "campaign.handover_interruption_s": 0.06,
    })
    scalar = build(spec, seed=9).campaign(2.0).run(kernel=False)
    kernel = build(spec, seed=9).campaign(2.0).run()
    assert_datasets_identical(scalar, kernel)


def test_kernel_reports_stage_breakdown():
    campaign = build(get("klagenfurt"), seed=42).campaign(2.0)
    kern = CampaignKernel(campaign)
    assert kern.stage_seconds == {}
    kern.run()
    assert set(kern.stage_seconds) == {
        "route_walk", "serving_matrix", "tables", "sampling"}
    assert all(v >= 0.0 for v in kern.stage_seconds.values())


def test_kernel_leaves_streams_where_scalar_does():
    """After a run, every named stream sits at the same position."""
    sc_scalar = build(get("klagenfurt"), seed=42)
    sc_kernel = build(get("klagenfurt"), seed=42)
    sc_scalar.campaign(2.0).run(kernel=False)
    sc_kernel.campaign(2.0).run()
    streams = sorted(sc_scalar.rng)
    assert streams == sorted(sc_kernel.rng)
    for key in streams:
        a = sc_scalar.rng.stream(*key).random()
        b = sc_kernel.rng.stream(*key).random()
        assert a == b
