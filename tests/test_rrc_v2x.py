"""Tests for the RRC state machine and V2X platooning models."""

import numpy as np
import pytest

from repro import units
from repro.apps.v2x import PlatoonConfig, PlatoonModel
from repro.ran import RadioConfig
from repro.ran.rrc import RrcConfig, RrcState, RrcStateMachine
from repro.sim import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(7).stream("rrc")


# ---------------------------------------------------------------------------
# RRC state machine
# ---------------------------------------------------------------------------

def machine():
    return RrcStateMachine(RadioConfig.nr_5g(),
                           RrcConfig(inactivity_s=10.0, release_s=60.0))


def test_initial_state_is_idle():
    assert machine().state is RrcState.IDLE


def test_first_packet_pays_full_setup(rng):
    sm = machine()
    cost = sm.wakeup_cost_s(0.0, rng)
    assert cost > units.ms(10.0)          # RACH + setup signalling
    assert sm.state is RrcState.CONNECTED


def test_packet_within_activity_window_is_free(rng):
    sm = machine()
    sm.wakeup_cost_s(0.0, rng)
    assert sm.wakeup_cost_s(5.0, rng) == 0.0


def test_inactive_resume_cheaper_than_idle_setup(rng):
    sm = machine()
    sm.wakeup_cost_s(0.0, rng)
    # After the inactivity timer: INACTIVE.
    assert sm.state_at(15.0) is RrcState.INACTIVE
    resume = sm.wakeup_cost_s(15.0, rng)
    # After inactivity + release: IDLE.
    assert sm.state_at(15.0 + 75.0) is RrcState.IDLE
    setup = sm.wakeup_cost_s(15.0 + 75.0, rng)
    # Mean comparison is the robust one (single samples are noisy).
    assert sm.mean_wakeup_cost_s(RrcState.INACTIVE) < \
        sm.mean_wakeup_cost_s(RrcState.IDLE)
    assert sm.mean_wakeup_cost_s(RrcState.CONNECTED) == 0.0
    assert resume > 0 and setup > 0


def test_burst_timeline(rng):
    sm = machine()
    # bursts at t=0 (cold), t=1..3 (warm), t=100 (idle again)
    arrivals = np.array([0.0, 1.0, 2.0, 3.0, 100.0])
    costs = sm.burst_timeline_costs(arrivals, rng)
    assert costs[0] > 0.0
    assert (costs[1:4] == 0.0).all()
    assert costs[4] > 0.0


def test_rrc_validation(rng):
    with pytest.raises(ValueError):
        RrcConfig(inactivity_s=0.0)
    sm = machine()
    sm.wakeup_cost_s(10.0, rng)
    with pytest.raises(ValueError):
        sm.state_at(5.0)     # time went backwards
    with pytest.raises(ValueError):
        sm.burst_timeline_costs(np.array([]), rng)
    with pytest.raises(ValueError):
        sm.burst_timeline_costs(np.array([2.0, 1.0]), rng)


# ---------------------------------------------------------------------------
# V2X platooning
# ---------------------------------------------------------------------------

def test_headway_bound_grows_with_latency():
    platoon = PlatoonModel(PlatoonConfig())
    bounds = [platoon.min_stable_headway_s(units.ms(x))
              for x in (1.0, 10.0, 61.0)]
    assert bounds[0] < bounds[1] < bounds[2]


def test_string_stability_check():
    platoon = PlatoonModel(PlatoonConfig())
    # generous headway: stable even on the measured field
    assert platoon.string_stable(2.0, units.ms(61.0))
    # tight headway: needs low latency
    tight = 0.55
    assert platoon.string_stable(tight, units.ms(1.0))
    assert not platoon.string_stable(tight, units.ms(61.0))


def test_capacity_gain_from_6g():
    """Lane capacity at string-stable headway: 6G-class latency buys a
    measurable capacity gain over the measured 5G field."""
    platoon = PlatoonModel(PlatoonConfig())
    gain = platoon.capacity_gain(rtt_old_s=units.ms(61.0),
                                 rtt_new_s=units.ms(1.0))
    assert 1.05 < gain < 2.0


def test_disturbance_amplification():
    platoon = PlatoonModel(PlatoonConfig(vehicles=8))
    stable_gain = platoon.disturbance_amplification(2.0, units.ms(5.0))
    assert stable_gain < 1.0
    assert platoon.tail_error_factor(2.0, units.ms(5.0)) < 1.0
    unstable_gain = platoon.disturbance_amplification(0.5, units.ms(61.0))
    assert unstable_gain > 1.0
    assert platoon.tail_error_factor(0.5, units.ms(61.0)) > \
        unstable_gain   # grows along the string


def test_v2x_validation():
    with pytest.raises(ValueError):
        PlatoonConfig(vehicles=1)
    with pytest.raises(ValueError):
        PlatoonConfig(cam_rate_hz=0.0)
    platoon = PlatoonModel(PlatoonConfig())
    with pytest.raises(ValueError):
        platoon.min_stable_headway_s(-1.0)
    with pytest.raises(ValueError):
        platoon.string_stable(0.0, 1e-3)
