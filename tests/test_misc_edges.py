"""Edge-case coverage for smaller public surfaces."""

import numpy as np
import pytest

from repro import units
from repro.core import (
    InfrastructureEvaluation,
    KlagenfurtScenario,
    render_grid_heatmap,
)
from repro.geo import GeoPoint, Grid
from repro.net import LatencyBreakdown
from repro.sim import Simulator


def test_heatmap_shape_mismatch_rejected():
    grid = Grid(GeoPoint(46.65, 14.25), cols=6, rows=7)
    with pytest.raises(ValueError, match="does not match grid"):
        render_grid_heatmap(grid, np.zeros((3, 3)))


def test_heatmap_renders_title_and_mask():
    grid = Grid(GeoPoint(46.65, 14.25), cols=2, rows=2)
    matrix = np.array([[61.2, 0.0], [110.1, 47.0]])
    text = render_grid_heatmap(grid, matrix, title="Demo", unit="ms")
    assert "Demo [ms]" in text
    assert " 61.2" in text and "  0.0" in text
    # row labels 1..2 and column labels A..B present
    assert "A" in text.splitlines()[1]
    assert text.splitlines()[2].startswith("  1")


def test_evaluation_accepts_prebuilt_scenario():
    scenario = KlagenfurtScenario(seed=42)
    result = InfrastructureEvaluation(
        seed=0, mean_positions_per_cell=2.0).run(scenario)
    assert result.scenario is scenario
    assert len(result.dataset) > 0


def test_breakdown_add_type_mismatch():
    b = LatencyBreakdown(propagation=1e-3)
    with pytest.raises(TypeError):
        _ = b + 1.0


def test_simulator_timeout_value_roundtrip():
    sim = Simulator()
    collected = []

    def proc():
        value = yield sim.timeout(0.5, value={"k": 1})
        collected.append(value)

    sim.process(proc())
    sim.run()
    assert collected == [{"k": 1}]


def test_scenario_campaign_positions_scale_sample_count():
    scenario = KlagenfurtScenario(seed=42)
    small = scenario.run_campaign(2.0)
    scenario2 = KlagenfurtScenario(seed=42)
    large = scenario2.run_campaign(6.0)
    assert len(large) > 1.5 * len(small)


def test_units_table_consistency():
    assert units.TB / units.GB == pytest.approx(1000.0)
    assert units.RATE_TBPS / units.RATE_GBPS == pytest.approx(1000.0)
    assert units.DAY == 24 * units.HOUR


def test_iot_protocols_cover_all_enum_values():
    from repro.apps import IotProtocol, PROTOCOLS
    assert set(PROTOCOLS) == set(IotProtocol)
    for protocol, stack in PROTOCOLS.items():
        assert stack.protocol is protocol
