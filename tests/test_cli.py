"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requirements(capsys):
    assert main(["requirements"]) == 0
    out = capsys.readouterr().out
    assert "remote-surgery" in out
    assert "FAIL" in out          # 5G fails some rows
    assert "6G" in out


def test_cli_upf(capsys):
    assert main(["upf"]) == 0
    out = capsys.readouterr().out
    assert "edge" in out and "central-cloud" in out
    assert "9" in out             # ~92% reduction


def test_cli_cpf(capsys):
    assert main(["cpf"]) == 0
    out = capsys.readouterr().out
    assert "pdu-session-establishment" in out


def test_cli_peering(capsys):
    assert main(["peering", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "->" in out
    assert "km" in out and "ms" in out


def test_cli_evaluate(capsys):
    assert main(["evaluate", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "Urban Mean Round-trip Time Latency" in out
    assert "zetservers.peering.cz" in out
    assert "exceeds the 20 ms requirement" in out


def test_cli_upgrade(capsys):
    assert main(["upgrade"]) == 0
    out = capsys.readouterr().out
    assert "6G + edge breakout" in out
    assert "yes" in out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
