"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requirements(capsys):
    assert main(["requirements"]) == 0
    out = capsys.readouterr().out
    assert "remote-surgery" in out
    assert "FAIL" in out          # 5G fails some rows
    assert "6G" in out


def test_cli_upf(capsys):
    assert main(["upf"]) == 0
    out = capsys.readouterr().out
    assert "edge" in out and "central-cloud" in out
    assert "9" in out             # ~92% reduction


def test_cli_cpf(capsys):
    assert main(["cpf"]) == 0
    out = capsys.readouterr().out
    assert "pdu-session-establishment" in out


def test_cli_peering(capsys):
    assert main(["peering", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "->" in out
    assert "km" in out and "ms" in out


def test_cli_evaluate(capsys):
    assert main(["evaluate", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "Urban Mean Round-trip Time Latency" in out
    assert "zetservers.peering.cz" in out
    assert "exceeds the 20 ms requirement" in out


def test_cli_upgrade(capsys):
    assert main(["upgrade"]) == 0
    out = capsys.readouterr().out
    assert "6G + edge breakout" in out
    assert "yes" in out


def test_cli_evaluate_named_scenario(capsys):
    assert main(["evaluate", "--scenario", "skopje", "--seed", "42"]) == 0
    out = capsys.readouterr().out
    assert "Urban Mean Round-trip Time Latency" in out
    assert "balkan-transit" in out


def test_cli_scenarios_lists_registry(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "klagenfurt" in out and "skopje" in out
    assert "6x7" in out and "5x5" in out


def test_cli_scenarios_json_dump_round_trips(capsys):
    from repro.scenarios import ScenarioSpec, skopje

    assert main(["scenarios", "--scenario", "skopje", "--json"]) == 0
    out = capsys.readouterr().out
    assert ScenarioSpec.from_json(out) == skopje()


def test_cli_scenarios_dumps_spec_file(tmp_path, capsys):
    from repro.scenarios import ScenarioSpec, skopje

    path = tmp_path / "city.json"
    path.write_text(skopje().to_json())
    assert main(["scenarios", "--spec", str(path)]) == 0
    assert ScenarioSpec.from_json(capsys.readouterr().out) == skopje()


def test_cli_evaluate_spec_file(tmp_path, capsys):
    from repro.scenarios import skopje

    path = tmp_path / "city.json"
    path.write_text(skopje().to_json())
    assert main(["evaluate", "--spec", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Urban Mean Round-trip Time Latency" in out


def test_cli_unknown_scenario_is_clean_error(capsys):
    assert main(["evaluate", "--scenario", "atlantis"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'atlantis'" in err
    assert "klagenfurt" in err      # names the registered options


def test_cli_malformed_spec_file_is_clean_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "a spec"}')
    assert main(["evaluate", "--spec", str(path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
