"""Golden digests: the bit-identity tripwire for perf work.

Each digest is the SHA-256 of ``EvaluationSummary.canonical_json()``
for a registered scenario at the paper's seed.  Any change anywhere in
the measurement pipeline — RNG consumption order, float operation
order, serving-cell tie-breaks, serialization — flips these bytes.

If one of these assertions fails, a change broke bit-reproducibility:
every content-addressed cache entry (``fleet.cache.run_key``) and every
cross-fleet comparison baseline silently invalidates.  Do NOT update
the constants to make the suite green unless the change *intends* to
alter simulation results, and say so loudly in the changelog.
"""

import hashlib

import pytest

from repro.core.evaluation import InfrastructureEvaluation

GOLDEN_SHA256 = {
    "klagenfurt":
        "fadf1e06761655ceaa4d88bbdcf49344f7687cb3041cb1a51b514305b7c92add",
    "skopje":
        "226d7020331b6453943c5603a875045d285d9e451a753bc78665e8f7a68a52df",
}


@pytest.mark.parametrize("scenario", sorted(GOLDEN_SHA256))
def test_golden_summary_digest(scenario):
    summary = InfrastructureEvaluation(
        seed=42, scenario=scenario).run().summary()
    digest = hashlib.sha256(
        summary.canonical_json().encode("utf-8")).hexdigest()
    assert digest == GOLDEN_SHA256[scenario], (
        f"{scenario} @ seed 42 produced digest {digest}; the committed "
        f"golden value is {GOLDEN_SHA256[scenario]}. A code change "
        "altered simulation bytes — see this module's docstring before "
        "touching the constant.")


def test_golden_digest_is_run_to_run_stable():
    a = InfrastructureEvaluation(seed=42).run().summary().canonical_json()
    b = InfrastructureEvaluation(seed=42).run().summary().canonical_json()
    assert a == b
