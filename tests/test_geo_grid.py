"""Tests for grid segmentation (Fig. 1 methodology)."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import CellId, GeoPoint, Grid, KLAGENFURT


@pytest.fixture
def grid():
    """The paper's 6x7 Klagenfurt grid with 1 km cells."""
    return Grid(origin=GeoPoint(46.653, 14.255), cell_size_m=1000.0,
                cols=6, rows=7)


# ---------------------------------------------------------------------------
# CellId
# ---------------------------------------------------------------------------

def test_cellid_label_round_trip():
    for label in ("A1", "C3", "F7", "B3", "E5"):
        assert CellId.from_label(label).label == label


def test_cellid_from_label_case_insensitive():
    assert CellId.from_label("c3") == CellId.from_label("C3")


def test_cellid_label_mapping():
    assert CellId(0, 0).label == "A1"
    assert CellId(2, 0).label == "C1"
    assert CellId(5, 6).label == "F7"


def test_cellid_malformed_labels_rejected():
    for bad in ("", "7", "AA", "C0", "C-1", "1C"):
        with pytest.raises(ValueError):
            CellId.from_label(bad)


def test_cellid_negative_indices_rejected():
    with pytest.raises(ValueError):
        CellId(-1, 0)
    with pytest.raises(ValueError):
        CellId(0, -1)


def test_cellid_ordering_is_column_major():
    assert CellId(0, 0) < CellId(0, 1) < CellId(1, 0)


# ---------------------------------------------------------------------------
# Grid geometry
# ---------------------------------------------------------------------------

def test_grid_validations():
    with pytest.raises(ValueError):
        Grid(KLAGENFURT, cell_size_m=0.0)
    with pytest.raises(ValueError):
        Grid(KLAGENFURT, cols=0)
    with pytest.raises(ValueError):
        Grid(KLAGENFURT, cols=27)


def test_grid_has_42_cells(grid):
    assert grid.cell_count == 42
    assert len(list(grid.cells())) == 42


def test_cells_are_unique(grid):
    cells = list(grid.cells())
    assert len(set(cells)) == len(cells)


def test_cell_centers_are_located_in_their_cell(grid):
    for cell in grid.cells():
        assert grid.locate(grid.cell_center(cell)) == cell


def test_cell_origin_is_nw_corner(grid):
    cell = CellId.from_label("C3")
    origin = grid.cell_origin(cell)
    centre = grid.cell_center(cell)
    # centre is south-east of the NW corner
    assert centre.lat < origin.lat
    assert centre.lon > origin.lon
    # ~707 m apart for a 1 km cell (half diagonal)
    assert origin.distance_to(centre) == pytest.approx(707.1, rel=0.01)


def test_adjacent_cell_centres_are_one_km_apart(grid):
    d_ew = grid.cell_center(CellId.from_label("A1")).distance_to(
        grid.cell_center(CellId.from_label("B1")))
    d_ns = grid.cell_center(CellId.from_label("A1")).distance_to(
        grid.cell_center(CellId.from_label("A2")))
    assert d_ew == pytest.approx(1000.0, rel=0.01)
    assert d_ns == pytest.approx(1000.0, rel=0.01)


def test_locate_outside_grid_returns_none(grid):
    far = GeoPoint(48.0, 16.0)
    assert grid.locate(far) is None


def test_out_of_grid_cell_operations_raise(grid):
    ghost = CellId(10, 10)
    with pytest.raises(KeyError):
        grid.cell_center(ghost)
    with pytest.raises(KeyError):
        grid.neighbours(ghost)


def test_point_in_cell_fraction_bounds(grid):
    cell = CellId.from_label("B2")
    with pytest.raises(ValueError):
        grid.point_in_cell(cell, 1.0, 0.5)
    with pytest.raises(ValueError):
        grid.point_in_cell(cell, 0.5, -0.1)


@given(st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=6),
       st.floats(min_value=0.0, max_value=0.999),
       st.floats(min_value=0.0, max_value=0.999))
def test_point_in_cell_locates_back(col, row, fe, fs):
    grid = Grid(origin=GeoPoint(46.653, 14.255), cell_size_m=1000.0,
                cols=6, rows=7)
    cell = CellId(col, row)
    pt = grid.point_in_cell(cell, fe, fs)
    assert grid.locate(pt) == cell


def test_neighbours_interior_cell(grid):
    n = grid.neighbours(CellId.from_label("C3"))
    labels = {c.label for c in n}
    assert labels == {"C2", "C4", "B3", "D3"}


def test_neighbours_corner_cell(grid):
    n = grid.neighbours(CellId.from_label("A1"))
    labels = {c.label for c in n}
    assert labels == {"A2", "B1"}


def test_is_border(grid):
    assert grid.is_border(CellId.from_label("A1"))
    assert grid.is_border(CellId.from_label("F7"))
    assert grid.is_border(CellId.from_label("C1"))
    assert not grid.is_border(CellId.from_label("C3"))
    assert not grid.is_border(CellId.from_label("E5"))


def test_border_cell_count(grid):
    # 6x7 grid: perimeter = 2*6 + 2*7 - 4 = 22
    borders = [c for c in grid.cells() if grid.is_border(c)]
    assert len(borders) == 22


def test_boustrophedon_covers_all_cells_once(grid):
    order = grid.boustrophedon_order()
    assert len(order) == 42
    assert len(set(order)) == 42


def test_boustrophedon_is_serpentine(grid):
    order = grid.boustrophedon_order()
    assert [c.label for c in order[:6]] == ["A1", "B1", "C1", "D1", "E1", "F1"]
    assert [c.label for c in order[6:12]] == ["F2", "E2", "D2", "C2", "B2",
                                              "A2"]


def test_boustrophedon_consecutive_cells_adjacent(grid):
    order = grid.boustrophedon_order()
    for a, b in zip(order, order[1:]):
        assert abs(a.col - b.col) + abs(a.row - b.row) == 1


def test_contains(grid):
    assert CellId.from_label("F7") in grid
    assert CellId(6, 0) not in grid
