"""Tests for the determinism-contract linter (``python -m repro lint``).

Each REP rule gets a passing and a failing fixture through the public
``check_source`` API; the engine, fingerprints, baseline round-trip,
CLI exit codes, and the committed tree's cleanliness are pinned on top.
"""

import io
import json
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    apply_baseline,
    check_paths,
    check_source,
    load_config,
    path_selected,
    rule_catalog,
    run_lint,
)
from repro.lint.config import tomllib

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(source: str, *, path: str = "mod.py",
         config: LintConfig | None = None):
    return check_source(textwrap.dedent(source), path=path, config=config)


def codes(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# REP001 — ambient randomness
# ---------------------------------------------------------------------------

def test_rep001_flags_stdlib_random():
    findings = lint("""
        import random

        def draw():
            return random.random()
    """)
    assert codes(findings) == ["REP001"]
    assert "process-global" in findings[0].message


def test_rep001_flags_legacy_numpy_global_state():
    findings = lint("""
        import numpy as np

        def draw(n):
            return np.random.rand(n)
    """)
    assert codes(findings) == ["REP001"]
    assert "legacy" in findings[0].message


def test_rep001_flags_unseeded_factory_only():
    bad = lint("""
        import numpy as np

        def make():
            return np.random.default_rng()
    """)
    assert codes(bad) == ["REP001"]
    good = lint("""
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
    """)
    assert good == []


def test_rep001_accepts_generator_construction():
    findings = lint("""
        import numpy as np

        def make(seed):
            return np.random.Generator(np.random.PCG64(seed))
    """)
    assert findings == []


def test_rep001_resolves_from_imports():
    findings = lint("""
        from numpy.random import default_rng

        def make():
            return default_rng()
    """)
    assert codes(findings) == ["REP001"]


# ---------------------------------------------------------------------------
# REP002 — wall-clock / entropy reads
# ---------------------------------------------------------------------------

def test_rep002_flags_wall_clock_and_entropy():
    findings = lint("""
        import os
        import time
        import uuid

        def stamp():
            return time.time(), uuid.uuid4(), os.urandom(8)
    """)
    assert codes(findings) == ["REP002"] * 3


def test_rep002_allows_perf_counter():
    findings = lint("""
        import time

        def measure():
            return time.perf_counter()
    """)
    assert findings == []


def test_rep002_respects_exempt_paths():
    config = replace(LintConfig(), rep002_exempt=("pkg/fleet/",))
    source = """
        import time

        def stamp():
            return time.time()
    """
    assert lint(source, path="pkg/fleet/executors.py",
                config=config) == []
    assert codes(lint(source, path="pkg/core/eval.py",
                      config=config)) == ["REP002"]


# ---------------------------------------------------------------------------
# REP003 — unordered iteration on the stream path
# ---------------------------------------------------------------------------

REP003_CONFIG = replace(LintConfig(), rep003_paths=("mod.py",))


def test_rep003_flags_dict_items_iteration():
    findings = lint("""
        def serialize(mapping):
            return [(k, v) for k, v in mapping.items()]
    """, config=REP003_CONFIG)
    assert codes(findings) == ["REP003"]


def test_rep003_flags_set_iteration():
    findings = lint("""
        def drain(cells):
            for cell in set(cells):
                yield cell
    """, config=REP003_CONFIG)
    assert codes(findings) == ["REP003"]


def test_rep003_accepts_sorted_wrapping():
    findings = lint("""
        def serialize(mapping):
            return [(k, v) for k, v in sorted(mapping.items())]
    """, config=REP003_CONFIG)
    assert findings == []


def test_rep003_dormant_off_the_stream_path():
    findings = lint("""
        def serialize(mapping):
            return [(k, v) for k, v in mapping.items()]
    """, path="elsewhere.py", config=REP003_CONFIG)
    assert findings == []


# ---------------------------------------------------------------------------
# REP004 — NumPy SIMD transcendentals in bit-identity modules
# ---------------------------------------------------------------------------

REP004_CONFIG = replace(LintConfig(), rep004_paths=("kernel.py",))


def test_rep004_flags_array_transcendentals():
    findings = lint("""
        import numpy as np

        def gains(theta):
            return np.sin(theta) + np.log10(theta)
    """, path="kernel.py", config=REP004_CONFIG)
    assert codes(findings) == ["REP004", "REP004"]


def test_rep004_flags_transcendental_power():
    findings = lint("""
        import numpy as np

        def haversine_core(dlat):
            return np.sin(dlat / 2.0) ** 2
    """, path="kernel.py", config=REP004_CONFIG)
    # the inner np.sin call and the ** 2 over it
    assert codes(findings) == ["REP004", "REP004"]


def test_rep004_allows_math_module_and_other_files():
    assert lint("""
        import math

        def gain(theta):
            return math.sin(theta)
    """, path="kernel.py", config=REP004_CONFIG) == []
    assert lint("""
        import numpy as np

        def gains(theta):
            return np.sin(theta)
    """, path="fast_path.py", config=REP004_CONFIG) == []


# ---------------------------------------------------------------------------
# REP005 — frozen-spec mutation
# ---------------------------------------------------------------------------

def test_rep005_flags_setattr_outside_post_init():
    findings = lint("""
        def tweak(spec, value):
            object.__setattr__(spec, "density", value)
    """)
    assert codes(findings) == ["REP005"]
    assert "tweak" in findings[0].message


def test_rep005_allows_post_init():
    findings = lint("""
        class Spec:
            def __post_init__(self):
                object.__setattr__(self, "values", tuple(self.values))
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# REP006 — Executor payloads
# ---------------------------------------------------------------------------

REP006_CONFIG = replace(
    LintConfig(),
    rep006_paths=("worker.py",),
    rep006_payload_functions=("run_one",),
    rep006_heavy_types=("Topology",),
)


def test_rep006_flags_lambda_submission():
    findings = lint("""
        def drive(pool, runs):
            return [pool.submit(lambda: run) for run in runs]
    """, config=REP006_CONFIG)
    assert codes(findings) == ["REP006"]


def test_rep006_flags_nested_function_submission():
    findings = lint("""
        def drive(pool, runs):
            def work(run):
                return run
            return pool.map(work, runs)
    """, config=REP006_CONFIG)
    assert codes(findings) == ["REP006"]
    assert "work" in findings[0].message


def test_rep006_flags_heavy_return_from_payload_function():
    source = """
        from net.topology import Topology

        def run_one(spec):
            return Topology(spec)
    """
    findings = lint(source, path="worker.py", config=REP006_CONFIG)
    assert codes(findings) == ["REP006"]
    # same function elsewhere is out of scope
    assert lint(source, path="elsewhere.py", config=REP006_CONFIG) == []


def test_rep006_accepts_top_level_function_and_plain_data():
    findings = lint("""
        def run_one(spec):
            return {"summary": spec}

        def drive(pool, runs):
            return pool.map(run_one, runs)
    """, path="worker.py", config=REP006_CONFIG)
    assert findings == []


# ---------------------------------------------------------------------------
# engine — syntax errors, fingerprints, sorting
# ---------------------------------------------------------------------------

def test_syntax_error_is_a_finding_not_a_crash():
    findings = lint("def broken(:\n    pass\n")
    assert codes(findings) == ["REP000"]
    assert "does not parse" in findings[0].message


def test_fingerprints_survive_line_shifts():
    source = """
        import random

        def draw():
            return random.random()
    """
    before = lint(source)
    after = lint("# a new leading comment\n\n" + textwrap.dedent(source))
    assert len(before) == len(after) == 1
    assert before[0].fingerprint == after[0].fingerprint
    assert before[0].line != after[0].line


def test_duplicate_lines_get_distinct_fingerprints():
    findings = lint("""
        import random

        def draw():
            a = random.random()
            a = random.random()
            return a
    """)
    assert codes(findings) == ["REP001", "REP001"]
    assert findings[0].fingerprint != findings[1].fingerprint


def test_findings_sorted_and_rendered():
    findings = lint("""
        import random
        import time

        def b():
            return time.time()

        def a():
            return random.random()
    """)
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = findings[0].render()
    assert rendered.startswith("mod.py:")
    assert findings[0].rule in rendered


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------

def test_path_selected_semantics():
    assert path_selected("pkg/sub/mod.py", ("pkg/sub/",))
    assert path_selected("pkg/mod.py", ("pkg/mod.py",))
    assert not path_selected("pkg/mod.py", ("pkg/mod",))
    assert not path_selected("pkg/submarine.py", ("pkg/sub/",))


def test_unknown_config_key_raises():
    from repro.lint.config import config_from_mapping
    with pytest.raises(KeyError, match="unknown"):
        config_from_mapping({"rep007-paths": ["x/"]})


def test_config_accepts_toml_dashes():
    from repro.lint.config import config_from_mapping
    config = config_from_mapping({"rep004-paths": ["kernel.py"]})
    assert config.rep004_paths == ("kernel.py",)


@pytest.mark.skipif(tomllib is None, reason="needs tomllib (py3.11+)")
def test_repo_config_scopes_bit_identity_modules():
    config = load_config(REPO_ROOT)
    assert "src/repro/geo/coords.py" in config.rep004_paths
    assert "src/repro/probes/kernel.py" in config.rep004_paths
    assert config.paths == ("src/repro/",)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def test_baseline_round_trip_accepts_and_goes_stale(tmp_path):
    findings = lint("""
        import random

        def draw():
            return random.random()
    """)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)

    match = apply_baseline(findings, loaded)
    assert match.new == ()
    assert len(match.accepted) == 1
    assert match.stale == ()

    # the flagged code changed -> entry is stale, nothing accepted
    changed = lint("""
        import random

        def draw():
            return random.randint(0, 1)
    """)
    match = apply_baseline(changed, loaded, checked_paths=("mod.py",))
    assert codes(match.new) == ["REP001"]
    assert len(match.stale) == 1


def test_baseline_stale_only_for_checked_paths():
    findings = lint("""
        import random

        def draw():
            return random.random()
    """)
    baseline = Baseline.from_findings(findings)
    match = apply_baseline([], baseline, checked_paths=("other.py",))
    assert match.stale == ()
    match = apply_baseline([], baseline, checked_paths=("mod.py",))
    assert len(match.stale) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == ()


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


# ---------------------------------------------------------------------------
# check_paths + CLI
# ---------------------------------------------------------------------------

def write_module(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def test_check_paths_walks_and_sorts(tmp_path):
    write_module(tmp_path, "b.py", """
        import random
        x = random.random()
    """)
    write_module(tmp_path, "a.py", """
        import time
        y = time.time()
    """)
    findings = check_paths(root=tmp_path, config=replace(
        LintConfig(), paths=(".",)))
    assert [f.path for f in findings] == ["a.py", "b.py"]


def test_check_paths_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_paths(["nowhere/"], root=tmp_path)


def test_run_lint_exit_codes_and_json(tmp_path):
    write_module(tmp_path, "bad.py", """
        import random
        x = random.random()
    """)
    out, err = io.StringIO(), io.StringIO()
    code = run_lint(["bad.py"], root=str(tmp_path), out=out, err=err)
    assert code == 1
    assert "REP001" in out.getvalue()

    out = io.StringIO()
    code = run_lint(["bad.py"], root=str(tmp_path),
                    output_format="json", out=out, err=err)
    assert code == 1
    payload = json.loads(out.getvalue())
    assert payload["clean"] is False
    assert [v["rule"] for v in payload["violations"]] == ["REP001"]

    write_module(tmp_path, "good.py", "VALUE = 1\n")
    out = io.StringIO()
    code = run_lint(["good.py"], root=str(tmp_path), out=out, err=err)
    assert code == 0
    assert "determinism and concurrency contracts hold" in out.getvalue()

    code = run_lint(["good.py"], root=str(tmp_path),
                    output_format="yaml", out=out, err=err)
    assert code == 2


def test_run_lint_write_baseline_then_clean(tmp_path):
    write_module(tmp_path, "bad.py", """
        import random
        x = random.random()
    """)
    out, err = io.StringIO(), io.StringIO()
    assert run_lint(["bad.py"], root=str(tmp_path),
                    write_baseline=True, out=out, err=err) == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    # accepted now; --no-baseline resurfaces it
    assert run_lint(["bad.py"], root=str(tmp_path),
                    out=out, err=err) == 0
    assert run_lint(["bad.py"], root=str(tmp_path),
                    no_baseline=True, out=out, err=err) == 1


def test_run_lint_list_rules():
    out = io.StringIO()
    assert run_lint(list_rules=True, out=out, err=io.StringIO()) == 0
    text = out.getvalue()
    for code, category, _title in rule_catalog():
        assert code in text
        assert f"[{category}]" in text
    assert len(rule_catalog()) == 12


# ---------------------------------------------------------------------------
# the committed tree holds its own contracts
# ---------------------------------------------------------------------------

@pytest.mark.skipif(tomllib is None, reason="needs tomllib (py3.11+)")
def test_committed_tree_lints_clean_against_baseline():
    config = load_config(REPO_ROOT)
    findings = check_paths(root=REPO_ROOT, config=config)
    baseline = Baseline.load(REPO_ROOT / config.baseline)
    checked = [f.path for f in findings]
    match = apply_baseline(findings, baseline, checked_paths=None)
    new = [f.render() for f in match.new]
    assert new == [], f"new determinism-lint findings: {new}"
    stale = [e.key() for e in match.stale]
    assert stale == [], f"stale baseline entries: {stale}"
