"""Direct unit tests for the drive-test campaign machinery."""

import numpy as np
import pytest

from repro import units
from repro.cn import SiteTier, UserPlaneFunction
from repro.geo import CellId, GeoPoint, Grid
from repro.geo.mobility import DriveTestRoute
from repro.net import (
    ASGraph,
    AutonomousSystem,
    Node,
    NodeKind,
    RouteComputer,
    Topology,
)
from repro.probes import CampaignConfig, DriveTestCampaign
from repro.probes.campaign import Gateway, MobilePeer
from repro.ran import ChannelModel, GNodeB, RadioConfig, RadioNetwork
from repro.sim import RngRegistry

CITY = GeoPoint(46.62, 14.30)
FAR_CITY = GeoPoint(48.21, 16.37)


@pytest.fixture
def world():
    """Minimal two-gateway world for campaign unit tests."""
    grid = Grid(GeoPoint(46.653, 14.255), cols=3, rows=3)
    config = RadioConfig.nr_5g()
    channel = ChannelModel(config.carrier_frequency_hz,
                           antenna_gain_db=28.0, seed=1)
    radio = RadioNetwork(channel, [
        GNodeB("gnb-1", grid.cell_center(CellId.from_label("B2")),
               config, load=0.5)])
    topo = Topology()
    asg = ASGraph()
    asg.add(AutonomousSystem(1, "mobile"))
    asg.add(AutonomousSystem(2, "eyeball"))
    asg.set_peers(1, 2)
    gw_a = topo.add_node(Node("gw-a", NodeKind.GATEWAY, CITY, asn=1))
    gw_b = topo.add_node(Node("gw-b", NodeKind.GATEWAY, FAR_CITY, asn=1))
    eye = topo.add_node(Node("eye", NodeKind.ROUTER, CITY, asn=2))
    probe = topo.add_node(Node("probe", NodeKind.PROBE, CITY, asn=2))
    topo.connect(gw_a, gw_b)
    topo.connect(gw_a, eye)
    topo.connect(eye, probe)
    routes = RouteComputer(topo, asg)

    def upf(name, load=0.3):
        return UserPlaneFunction(name=name, location=CITY,
                                 tier=SiteTier.EDGE, load=load)

    gateways = {
        "near": Gateway("near", "gw-a", upf("upf-a")),
        "far": Gateway("far", "gw-b", upf("upf-b")),
    }
    return grid, radio, routes, gateways


def make_config(gateways, **overrides):
    defaults = dict(
        targets={},
        gateways=gateways,
        default_gateway="near",
        peers={"peer-1": MobilePeer("peer-1", air_load=0.5)},
        default_targets=("peer-1", "probe"),
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def make_campaign(world, config):
    grid, radio, routes, _ = world
    cells = [CellId.from_label("B2")]
    route = DriveTestRoute(grid, cells, RngRegistry(3).stream("r"),
                           mean_samples_per_cell=3.0, min_samples=2)
    return DriveTestCampaign(grid=grid, route=route, radio=radio,
                             routes=routes, config=config,
                             rng=RngRegistry(3))


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

def test_config_requires_targets(world):
    _, _, _, gateways = world
    with pytest.raises(ValueError, match="needs targets"):
        make_config(gateways, targets={}, default_targets=())


def test_config_rejects_unknown_default_gateway(world):
    _, _, _, gateways = world
    with pytest.raises(ValueError, match="not registered"):
        make_config(gateways, default_gateway="ghost")


def test_config_rejects_unknown_cell_gateway(world):
    _, _, _, gateways = world
    with pytest.raises(ValueError, match="unknown gateway"):
        make_config(gateways, gateway_by_cell={
            CellId.from_label("B2"): "ghost"})


def test_config_rejects_bad_handover_prob(world):
    _, _, _, gateways = world
    with pytest.raises(ValueError, match="not in"):
        make_config(gateways, handover_prob={
            CellId.from_label("B2"): 1.5})


def test_campaign_rejects_missing_gateway_node(world):
    grid, radio, routes, gateways = world
    bad = dict(gateways, near=Gateway(
        "near", "nonexistent", gateways["near"].upf))
    config = make_config(bad)
    with pytest.raises(KeyError, match="not in topology"):
        make_campaign((grid, radio, routes, bad), config)


def test_peer_validation():
    with pytest.raises(ValueError):
        MobilePeer("", air_load=0.5)
    with pytest.raises(ValueError):
        MobilePeer("p", air_load=1.0)
    with pytest.raises(ValueError):
        Gateway("", "node", None)


# ---------------------------------------------------------------------------
# Measurement paths
# ---------------------------------------------------------------------------

def test_campaign_runs_and_measures_both_target_kinds(world):
    config = make_config(world[3])
    campaign = make_campaign(world, config)
    dataset = campaign.run()
    targets = {rec.target for rec in dataset.records()}
    assert targets == {"peer-1", "probe"}
    assert (dataset.rtts > 0).all()


def test_cross_gateway_peer_pays_inter_gateway_transit(world):
    """A peer anchored at the *far* gateway adds the inter-gateway
    round trip to the hairpin."""
    grid, radio, routes, gateways = world
    cell = CellId.from_label("B2")
    position = grid.cell_center(cell)

    same = make_config(gateways, peers={
        "peer-1": MobilePeer("peer-1", air_load=0.5)})
    cross = make_config(gateways, peers={
        "peer-1": MobilePeer("peer-1", air_load=0.5, gateway="far")})

    rtt_same = np.mean([
        make_campaign(world, same).sample_rtt(position, cell, "peer-1")
        for _ in range(30)])
    rtt_cross = np.mean([
        make_campaign(world, cross).sample_rtt(position, cell, "peer-1")
        for _ in range(30)])
    # Vienna-distance transit appears twice (out and back).
    extra = rtt_cross - rtt_same
    assert extra > units.ms(2.0)


def test_cell_load_clamps(world):
    config = make_config(world[3], cell_extra_load={
        CellId.from_label("B2"): 5.0})   # absurd congestion
    campaign = make_campaign(world, config)
    assert campaign._cell_load(CellId.from_label("B2"), 0.5) == \
        pytest.approx(config.max_cell_load)
    assert campaign._cell_load(CellId.from_label("A1"), 0.5) == 0.5
    negative = make_config(world[3], cell_extra_load={
        CellId.from_label("B2"): -5.0})
    campaign2 = make_campaign(world, negative)
    assert campaign2._cell_load(CellId.from_label("B2"), 0.5) == 0.0


def test_handover_probability_adds_interruptions(world):
    grid, radio, routes, gateways = world
    cell = CellId.from_label("B2")
    position = grid.cell_center(cell)
    calm = make_config(gateways)
    stormy = make_config(gateways, handover_prob={cell: 1.0},
                         handover_interruption_s=0.2)
    rtt_calm = np.mean([make_campaign(world, calm).sample_rtt(
        position, cell, "probe") for _ in range(20)])
    rtt_stormy = np.mean([make_campaign(world, stormy).sample_rtt(
        position, cell, "probe") for _ in range(20)])
    # p=1 adds U(0.5, 1)*200 ms every sample.
    assert rtt_stormy - rtt_calm > 0.09


# ---------------------------------------------------------------------------
# Peer-site placement knob
# ---------------------------------------------------------------------------

def test_peer_site_index_must_be_in_radio_range(world):
    grid, radio, routes, gateways = world
    with pytest.raises(ValueError, match="non-negative"):
        make_config(gateways, peer_site_index=-1)
    # the fixture's radio network has a single site
    config = make_config(gateways, peer_site_index=1)
    with pytest.raises(ValueError, match="out of range"):
        make_campaign(world, config)


def test_peer_site_index_default_is_bit_for_bit_unchanged():
    """Explicit index 0 reproduces the legacy first-site approximation."""
    from repro.scenarios import build, klagenfurt

    baseline = build(klagenfurt(), seed=42).run_campaign(2.0)
    explicit = build(klagenfurt().with_overrides(
        {"campaign.peer_site_index": 0}), seed=42).run_campaign(2.0)
    assert np.array_equal(baseline.rtts, explicit.rtts)


def test_peer_site_index_moves_the_peer_leg():
    from repro.scenarios import build, klagenfurt

    assert len(klagenfurt().radio.sites) > 1
    baseline = build(klagenfurt(), seed=42).run_campaign(2.0)
    moved = build(klagenfurt().with_overrides(
        {"campaign.peer_site_index": 1}), seed=42).run_campaign(2.0)
    assert len(baseline) == len(moved)
    assert not np.array_equal(baseline.rtts, moved.rtts)
