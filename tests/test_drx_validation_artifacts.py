"""Tests for DRX, scenario validation and artifact export."""

import numpy as np
import pytest

from repro import units
from repro.core import (
    InfrastructureEvaluation,
    KlagenfurtScenario,
    validate_scenario,
)
from repro.geo.grid import CellId
from repro.ran import DrxConfig, DrxModel
from repro.sim import RngRegistry


# ---------------------------------------------------------------------------
# DRX
# ---------------------------------------------------------------------------

def test_drx_presets_span_the_tradeoff():
    latency = DrxModel(DrxConfig.latency_first())
    balanced = DrxModel(DrxConfig.balanced())
    battery = DrxModel(DrxConfig.battery_first())
    # Latency ordering...
    assert latency.mean_added_delay_s() < balanced.mean_added_delay_s() \
        < battery.mean_added_delay_s()
    # ...is the reverse of the power ordering.
    assert latency.mean_power_w() > balanced.mean_power_w() \
        > battery.mean_power_w()


def test_drx_mean_added_delay_formula():
    # cycle 100 ms, on 20 ms: sleep 80 ms; mean = 0.8 * 40 ms = 32 ms
    model = DrxModel(DrxConfig(cycle_s=0.1, on_duration_s=0.02))
    assert model.mean_added_delay_s() == pytest.approx(0.032)
    assert model.worst_added_delay_s() == pytest.approx(0.08)
    assert model.duty_cycle == pytest.approx(0.2)


def test_drx_sampled_matches_analytic():
    model = DrxModel(DrxConfig.balanced())
    rng = RngRegistry(3).stream("drx")
    samples = model.sample_added_delay_s(rng, size=100_000)
    assert float(np.mean(samples)) == pytest.approx(
        model.mean_added_delay_s(), rel=0.03)
    assert float(np.max(samples)) <= model.worst_added_delay_s()


def test_drx_budget_check():
    """AR (20 ms budget) tolerates the latency-first profile only."""
    network_rtt = units.ms(5.0)
    assert DrxModel(DrxConfig.latency_first()).meets_budget(
        units.ms(20.0), network_rtt)
    assert not DrxModel(DrxConfig.balanced()).meets_budget(
        units.ms(20.0), network_rtt)
    assert not DrxModel(DrxConfig.battery_first()).meets_budget(
        units.ms(20.0), network_rtt)


def test_drx_battery_life():
    battery = DrxModel(DrxConfig.battery_first())
    always_on = DrxModel(DrxConfig(cycle_s=1.0, on_duration_s=1.0))
    wh = 15.0   # a wearable battery
    assert battery.battery_life_hours(wh) > \
        20 * always_on.battery_life_hours(wh)
    with pytest.raises(ValueError):
        battery.battery_life_hours(0.0)


def test_drx_validation():
    with pytest.raises(ValueError):
        DrxConfig(cycle_s=0.0, on_duration_s=0.0)
    with pytest.raises(ValueError):
        DrxConfig(cycle_s=0.1, on_duration_s=0.2)    # on > cycle
    with pytest.raises(ValueError):
        DrxConfig(cycle_s=0.1, on_duration_s=0.05, sleep_power_w=2.0)
    model = DrxModel(DrxConfig.balanced())
    with pytest.raises(ValueError):
        model.meets_budget(0.0, 1e-3)


# ---------------------------------------------------------------------------
# Scenario validation
# ---------------------------------------------------------------------------

@pytest.fixture
def scenario():
    return KlagenfurtScenario(seed=42)


def kwargs_of(scenario):
    return dict(grid=scenario.grid,
                traversed_cells=scenario.traversed_cells,
                radio=scenario.radio, routes=scenario.routes,
                campaign_config=scenario.campaign_config)


def test_default_scenario_validates_clean(scenario):
    report = validate_scenario(**kwargs_of(scenario))
    assert report.ok
    assert report.issues == []
    assert "no issues" in report.render()


def test_validation_detects_unreachable_target(scenario):
    scenario.topology.remove_link("ascus-access", "probe-uni")
    scenario.routes.invalidate()
    report = validate_scenario(**kwargs_of(scenario))
    assert not report.ok
    assert any("unreachable" in str(i) for i in report.errors)


def test_validation_detects_missing_gateway_node(scenario):
    from repro.probes.campaign import Gateway
    bad = Gateway("ghost", "no-such-node",
                  scenario.campaign_config.gateways["vienna"].upf)
    scenario.campaign_config.gateways = dict(
        scenario.campaign_config.gateways, ghost=bad)
    report = validate_scenario(**kwargs_of(scenario))
    assert not report.ok
    assert any("missing node" in str(i) for i in report.errors)


def test_validation_warns_on_weak_coverage(scenario):
    # Demand an absurd SINR floor: every cell (even the six whose
    # centre hosts a gNB) becomes a warning.
    report = validate_scenario(**kwargs_of(scenario), min_sinr_db=100.0)
    assert report.ok                      # warnings, not errors
    assert len(report.warnings) == len(scenario.traversed_cells)


def test_validation_detects_out_of_grid_cell(scenario):
    cells = list(scenario.traversed_cells) + [CellId(20, 20)]
    report = validate_scenario(
        grid=scenario.grid, traversed_cells=cells,
        radio=scenario.radio, routes=scenario.routes,
        campaign_config=scenario.campaign_config)
    assert any("outside the grid" in str(i) for i in report.errors)


# ---------------------------------------------------------------------------
# Artifact export
# ---------------------------------------------------------------------------

def test_save_artifacts_round_trip(tmp_path):
    result = InfrastructureEvaluation(
        seed=42, mean_positions_per_cell=2.0).run()
    paths = result.save_artifacts(tmp_path / "artifacts")
    expected = {"figure2.txt", "figure3.txt", "table1.txt",
                "gap_summary.txt", "campaign.csv", "wired_baseline.csv"}
    assert set(paths) == expected
    # every returned path points at the file actually written
    from pathlib import Path
    for name, path in paths.items():
        assert Path(path) == tmp_path / "artifacts" / name
        assert Path(path).is_file() and Path(path).stat().st_size > 0
    fig2 = (tmp_path / "artifacts" / "figure2.txt").read_text()
    assert "Urban Mean Round-trip Time Latency" in fig2
    gap = (tmp_path / "artifacts" / "gap_summary.txt").read_text()
    assert "fig4 detour" in gap
    # the CSV reloads into an identical-size dataset
    from repro.probes import MeasurementDataset
    loaded = MeasurementDataset.load_csv(tmp_path / "artifacts"
                                         / "campaign.csv")
    assert len(loaded) == len(result.dataset)
