"""Tests for content-verified run identity and cross-fleet comparison:
spec_key stamping, the stale-record resume fix, v2 (digest-less)
compatibility, cache staging hardening, FleetResult validation, and
the compare report + CLI gates."""

import json
import os
import shutil
import threading

import pytest

from repro.core.compiled import CompiledScenario
from repro.core.evaluation import InfrastructureEvaluation
from repro.fleet import (
    SCHEMA_VERSION,
    FleetResult,
    FleetStore,
    RecordSet,
    ResultCache,
    RunRecord,
    SweepAxis,
    SweepSpec,
    compare_paths,
    compare_record_sets,
    comparison_summary,
    parse_fail_on,
    record_matches_spec,
    run_key,
    run_sweep,
)

from repro.scenarios import klagenfurt

AXIS = "campaign.handover_interruption_s"
DENSITY = 2.0


def small_sweep(values=(30e-3, 60e-3), seeds=(42,), **kwargs) -> SweepSpec:
    defaults = dict(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, tuple(values)),),
        seeds=tuple(seeds),
        density=DENSITY,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


@pytest.fixture
def eval_counter(monkeypatch):
    """Counts every run evaluation this test triggers — a full
    InfrastructureEvaluation or a compiled-scenario sampling phase
    (the batch backend's unit of work)."""
    calls = []
    real_run = InfrastructureEvaluation.run
    real_evaluate = CompiledScenario.evaluate

    def counting_run(self, *args, **kwargs):
        calls.append(1)
        return real_run(self, *args, **kwargs)

    def counting_evaluate(self, *args, **kwargs):
        calls.append(1)
        return real_evaluate(self, *args, **kwargs)

    monkeypatch.setattr(InfrastructureEvaluation, "run", counting_run)
    monkeypatch.setattr(CompiledScenario, "evaluate", counting_evaluate)
    return calls


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One result cache shared by the module's fleets, so the variants
    they have in common are computed exactly once."""
    return tmp_path_factory.mktemp("shared") / "cache"


@pytest.fixture(scope="module")
def fleet_a(tmp_path_factory, shared_cache):
    """Baseline fleet: axis values (0.03, 0.06), one seed."""
    out = tmp_path_factory.mktemp("fleet-a") / "a"
    return out, run_sweep(small_sweep(), cache=shared_cache, out=out)


@pytest.fixture(scope="module")
def fleet_b(tmp_path_factory, shared_cache):
    """Drifted-grid fleet: one axis value overridden (0.06 -> 0.09)."""
    out = tmp_path_factory.mktemp("fleet-b") / "b"
    return out, run_sweep(small_sweep(values=(30e-3, 90e-3)),
                          cache=shared_cache, out=out)


def downgrade_to_v2(directory) -> None:
    """Strip a fleet directory back to manifest schema v2: no
    spec_key anywhere, exactly what a pre-v3 writer produced."""
    manifest_path = directory / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = 2
    for entry in manifest["runs"]:
        entry.pop("spec_key", None)
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    for run_file in (directory / "runs").glob("*.json"):
        payload = json.loads(run_file.read_text())
        payload.pop("spec_key", None)
        run_file.write_text(json.dumps(payload, indent=2) + "\n")


def drifted_copy(records, scale: float) -> tuple:
    """Records with mobile mean scaled by ``scale`` but identities kept
    — what the same fleet looks like after an implementation change."""
    drifted = []
    for record in records:
        data = record.to_dict()
        data["summary"]["gap"]["mobile_mean_s"] *= scale
        drifted.append(RunRecord.from_dict(data))
    return tuple(drifted)


# ---------------------------------------------------------------------------
# spec_key stamping
# ---------------------------------------------------------------------------

def test_records_are_stamped_with_content_digest(fleet_a):
    out, result = fleet_a
    for run, record in zip(result.sweep.expand(), result.records):
        assert record.spec_key == run.spec_key() == \
            run_key(run.scenario, run.seed, run.density)
        assert record_matches_spec(record, run)
    # the digest is persisted in both the run files and the manifest
    run_file = json.loads(
        (out / "runs" / f"{result.records[0].run_id}.json").read_text())
    assert run_file["spec_key"] == result.records[0].spec_key
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["schema"] == SCHEMA_VERSION == 3
    assert [e["spec_key"] for e in manifest["runs"]] == \
        [r.spec_key for r in result.records]


def test_cache_hits_stamp_digestless_records(tmp_path, fleet_a):
    """Entries written by a pre-spec_key cache gain the digest on the
    way out — it is the key they were stored under."""
    _, result = fleet_a
    run = result.sweep.expand()[0]
    cache = ResultCache(tmp_path / "cache")
    legacy = RunRecord.from_dict(
        {k: v for k, v in result.records[0].to_dict().items()
         if k != "spec_key"})
    assert not legacy.spec_key
    cache.put(run.spec_key(), legacy)
    served = run_sweep(small_sweep(values=(30e-3,)), cache=cache)
    assert served.cached_count == 1
    assert served.records[0].spec_key == run.spec_key()


# ---------------------------------------------------------------------------
# The stale-record resume bug
# ---------------------------------------------------------------------------

def test_resume_recomputes_runs_invalidated_by_spec_edit(
        tmp_path, fleet_a, eval_counter):
    """Editing an axis value in manifest.json and resuming must re-run
    exactly the affected runs — run_id alone (positional, unchanged by
    the edit) used to let the stale record through silently."""
    out, result = fleet_a
    fleet = tmp_path / "fleet"
    shutil.copytree(out, fleet)
    store = FleetStore(fleet)

    manifest = json.loads(store.manifest_path.read_text())
    manifest["sweep"]["axes"][0]["values"] = [30e-3, 90e-3]
    store.manifest_path.write_text(json.dumps(manifest))

    missing = store.missing_runs()
    assert [r.run_id for r in missing] == ["klagenfurt-v001-s42"]
    assert missing[0].scenario.campaign.handover_interruption_s == 90e-3

    resumed = store.resume()
    assert len(eval_counter) == 1             # only the edited variant
    assert resumed.cached_count == len(resumed) - 1
    by_value = {r.axis_value(AXIS): r for r in resumed.records}
    assert sorted(by_value) == [30e-3, 90e-3]
    # the untouched variant was reused bit-for-bit, the edited one is
    # genuinely recomputed under the new spec
    assert by_value[30e-3].to_dict() == result.records[0].to_dict()
    assert by_value[90e-3].spec_key == missing[0].spec_key()
    assert store.missing_runs() == ()
    assert store.read_manifest()["complete"] is True


def test_v2_fleet_round_trips_and_resume_falls_back(
        tmp_path, fleet_a, eval_counter):
    """Digest-less (v2) fleets still load, resume clean with zero
    recompute, and detect spec edits through the metadata fallback."""
    out, result = fleet_a
    fleet = tmp_path / "fleet"
    shutil.copytree(out, fleet)
    downgrade_to_v2(fleet)
    store = FleetStore(fleet)

    # round-trip: the new loader reads v2 records (no spec_key) and a
    # reloaded record serializes back to its original v2 payload
    loaded = FleetStore(fleet).load()
    assert [r.spec_key for r in loaded.records] == ["", ""]
    first = (fleet / "runs" / f"{loaded.records[0].run_id}.json")
    assert loaded.records[0].to_dict() == json.loads(first.read_text())
    assert [r.summary.to_dict() for r in loaded.records] == \
        [r.summary.to_dict() for r in result.records]

    # intact v2 records satisfy the expansion via the fallback
    assert store.missing_runs() == ()
    resumed = store.resume()
    assert eval_counter == []
    assert resumed.cached_count == len(resumed)
    # records remain v2 (reused as-is), and the manifest is now v3
    assert store.read_manifest()["schema"] == 3

    # an axis edit is still detected without digests: the stored
    # variant metadata disagrees with the re-expanded spec
    manifest = json.loads(store.manifest_path.read_text())
    manifest["sweep"]["axes"][0]["values"] = [30e-3, 90e-3]
    store.manifest_path.write_text(json.dumps(manifest))
    assert [r.run_id for r in store.missing_runs()] == \
        ["klagenfurt-v001-s42"]


# ---------------------------------------------------------------------------
# FleetResult validation (silent zip truncation)
# ---------------------------------------------------------------------------

def test_fleet_result_rejects_mismatched_metadata_lengths(fleet_a):
    _, result = fleet_a
    with pytest.raises(ValueError, match="run_wall_s has 1 entries"):
        FleetResult(sweep=result.sweep, records=result.records,
                    run_wall_s=(0.5,))
    with pytest.raises(ValueError, match="cached has 1 entries"):
        FleetResult(sweep=result.sweep, records=result.records,
                    cached=(True,))
    # empty metadata means "unknown" and stays allowed
    bare = FleetResult(sweep=result.sweep, records=result.records)
    assert bare.run_wall_s == () and bare.cached == ()


# ---------------------------------------------------------------------------
# Cache staging hardening
# ---------------------------------------------------------------------------

def test_concurrent_puts_on_one_key_leave_a_valid_entry(
        tmp_path, fleet_a):
    _, result = fleet_a
    cache = ResultCache(tmp_path / "cache")
    record = result.records[0]
    key = record.spec_key
    errors = []

    def hammer():
        try:
            for _ in range(10):
                cache.put(key, record)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    loaded = cache.get(key)
    assert loaded is not None
    assert loaded.to_dict() == record.to_dict()
    assert len(cache) == 1
    # every writer staged under its own name; nothing left behind
    assert list(cache.path_for(key).parent.glob("*.tmp")) == []


def test_orphaned_staging_files_are_swept(tmp_path, fleet_a):
    _, result = fleet_a
    cache = ResultCache(tmp_path / "cache")
    record = result.records[0]
    key = record.spec_key
    shard = cache.path_for(key).parent
    shard.mkdir(parents=True, exist_ok=True)

    stale = shard / ".crashed-writer.json.tmp"
    stale.write_text("{half written")
    os.utime(stale, (0, 0))                   # abandoned long ago
    fresh = shard / ".live-writer.json.tmp"
    fresh.write_text("{in flight")

    cache.put(key, record)                    # opportunistic shard sweep
    assert not stale.exists()                 # aged past the TTL: gone
    assert fresh.exists()                     # a live writer is spared
    assert cache.get(key) is not None

    assert cache.sweep_orphans(max_age_s=0.0) == 1
    assert not fresh.exists()


# ---------------------------------------------------------------------------
# Cross-fleet comparison
# ---------------------------------------------------------------------------

def test_self_comparison_is_all_zero_deltas(fleet_a):
    out, result = fleet_a
    comparison = compare_paths([out, out])
    assert comparison.baseline != comparison.candidates[0]  # #2 suffix
    assert comparison.added == () and comparison.removed == ()
    assert len(comparison.deltas) == result.sweep.variant_count
    for delta in comparison.deltas:
        assert delta.identical_runs == len(delta.common_seeds) == 1
        for metric in delta.metrics:
            assert metric.delta == 0.0 and metric.pct == 0.0
    assert comparison.failures([("mobile_mean_ms", 0.0)]) == ()


def test_grid_drift_reports_added_and_removed_variants(fleet_a, fleet_b):
    (out_a, _), (out_b, _) = fleet_a, fleet_b
    comparison = compare_paths([out_a, out_b])
    assert len(comparison.deltas) == 1        # the shared 0.03 variant
    assert comparison.deltas[0].identical_runs == 1
    [(fleet, added_key)] = comparison.added
    assert fleet == "b" and dict(added_key)[AXIS] == 90e-3
    [(_, removed_key)] = comparison.removed
    assert dict(removed_key)[AXIS] == 60e-3
    # drifted grids fail any gate, even one the deltas satisfy
    failures = comparison.failures([("mobile_mean_ms", 50.0)])
    assert len(failures) == 2
    assert any("not in baseline" in message for message in failures)


def test_metric_drift_trips_only_the_moved_metric(fleet_a):
    _, result = fleet_a
    baseline = RecordSet("before", result.records)
    candidate = RecordSet("after", drifted_copy(result.records, 1.10))
    comparison = compare_record_sets(baseline, [candidate])
    assert comparison.added == () and comparison.removed == ()
    for delta in comparison.deltas:
        by_name = {m.metric: m for m in delta.metrics}
        assert by_name["mobile_mean_ms"].pct == pytest.approx(10.0)
        assert by_name["detour_km"].delta == 0.0
    assert comparison.failures([("mobile_mean_ms", 5.0)]) != ()
    assert comparison.failures([("mobile_mean_ms", 15.0)]) == ()
    assert comparison.failures([("detour_km", 0.0)]) == ()


def test_relabelled_axis_aligns_by_content(fleet_a):
    """A renamed axis changes every variant key; content identity must
    pair the variants anyway instead of reporting grid drift."""
    _, result = fleet_a
    renamed = []
    for record in result.records:
        data = record.to_dict()
        data["variant"] = [["handover", value]
                           for _, value in data["variant"]]
        renamed.append(RunRecord.from_dict(data))
    comparison = compare_record_sets(
        RecordSet("orig", result.records),
        [RecordSet("renamed", tuple(renamed))])
    assert comparison.added == () and comparison.removed == ()
    assert all(d.renamed for d in comparison.deltas)
    assert all(m.delta == 0.0 for d in comparison.deltas
               for m in d.metrics)
    assert "[= scenario=klagenfurt" in comparison_summary(comparison)


def test_comparison_between_v2_and_v3_fleets_aligns(tmp_path, fleet_a):
    """A digest-less fleet and a stamped one of the same campaign pair
    through the metadata fallback."""
    out, result = fleet_a
    legacy = tmp_path / "legacy"
    shutil.copytree(out, legacy)
    downgrade_to_v2(legacy)
    comparison = compare_paths([out, legacy])
    assert comparison.added == () and comparison.removed == ()
    assert comparison.identical_runs == len(result.records)
    assert all(m.delta == 0.0 for d in comparison.deltas
               for m in d.metrics)


def test_density_separates_same_seed_records(fleet_a):
    """A shared cache can hold the same (scenario, seed) at two
    sampling densities; they are different variants, not a silent
    seed-dict collision."""
    _, result = fleet_a
    other_density = []
    for record in result.records:
        data = record.to_dict()
        data["density"] = 6.0
        data["spec_key"] = "f" * 64
        other_density.append(RunRecord.from_dict(data))
    mixed = RecordSet("mixed", result.records + tuple(other_density))
    variants = mixed.variants()
    assert len(variants) == 2 * result.sweep.variant_count
    assert all(len(records) == 1 for records in variants.values())
    densities = {dict(key)["density"] for key in variants}
    assert densities == {DENSITY, 6.0}


def test_interrupted_fleet_contributes_streamed_records(
        tmp_path, fleet_a):
    """A fleet killed mid-sweep (skeleton manifest, complete: false)
    loads the records that reached runs/, not the manifest's empty
    run list."""
    out, result = fleet_a
    fleet = tmp_path / "interrupted"
    shutil.copytree(out, fleet)
    manifest = json.loads((fleet / "manifest.json").read_text())
    manifest["complete"] = False
    manifest["runs"] = []
    (fleet / "manifest.json").write_text(json.dumps(manifest))
    (fleet / "runs" / f"{result.records[1].run_id}.json").unlink()

    partial = RecordSet.from_path(fleet)
    assert len(partial) == 1
    comparison = compare_paths([out, fleet])
    assert len(comparison.deltas) == 1
    assert comparison.added == ()
    assert len(comparison.removed) == 1       # the run that never landed


def test_comparison_loads_result_caches(shared_cache, fleet_a, fleet_b):
    """A content-addressed cache is a record set too: it holds the
    union of every sweep that filled it."""
    (out_a, _), _ = fleet_a, fleet_b
    records = RecordSet.from_path(shared_cache)
    assert len(records) == 3                  # 0.03, 0.06, 0.09
    comparison = compare_paths([shared_cache, out_a])
    assert comparison.removed != ()           # 0.09 has no counterpart
    assert comparison.added == ()


def test_comparison_export_round_trips(tmp_path, fleet_a, fleet_b):
    (out_a, _), (out_b, _) = fleet_a, fleet_b
    comparison = compare_paths([out_a, out_b])
    parsed = json.loads(comparison.to_json())
    assert parsed["baseline"] == "a"
    assert len(parsed["deltas"][0]["metrics"]) == 4
    assert [AXIS, 90e-3] in parsed["added"][0]["variant"]

    csv_path = comparison.to_csv(tmp_path / "deltas.csv")
    lines = (tmp_path / "deltas.csv").read_text().splitlines()
    assert lines[0].startswith("fleet,status,variant,metric")
    statuses = {line.split(",")[1] for line in lines[1:]}
    assert statuses == {"common", "added", "removed"}
    assert csv_path == str(tmp_path / "deltas.csv")


def test_compare_paths_baseline_selection_and_errors(
        tmp_path, fleet_a, fleet_b):
    (out_a, _), (out_b, _) = fleet_a, fleet_b
    flipped = compare_paths([out_a, out_b], baseline=str(out_b))
    assert flipped.removed and dict(flipped.removed[0][1])[AXIS] == 90e-3
    with pytest.raises(ValueError, match="at least two"):
        compare_paths([out_a])
    with pytest.raises(ValueError, match="is not among"):
        compare_paths([out_a, out_b], baseline="nonsense")
    with pytest.raises(FileNotFoundError, match="neither a fleet"):
        compare_paths([out_a, tmp_path / "empty"])


def test_parse_fail_on_validates_gates():
    assert parse_fail_on("mobile_mean_ms:2.5") == ("mobile_mean_ms", 2.5)
    with pytest.raises(ValueError, match="METRIC:PCT"):
        parse_fail_on("no_such_metric:2")
    with pytest.raises(ValueError, match="METRIC:PCT"):
        parse_fail_on("mobile_mean_ms")
    with pytest.raises(ValueError, match="must be a number"):
        parse_fail_on("mobile_mean_ms:tight")
    with pytest.raises(ValueError, match=">= 0"):
        parse_fail_on("mobile_mean_ms:-1")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_compare_self_passes_tight_gates(fleet_a, capsys):
    from repro.__main__ import main

    out, _ = fleet_a
    assert main(["compare", str(out), str(out),
                 "--fail-on", "mobile_mean_ms:0.01",
                 "--fail-on", "exceedance_percent:0.01"]) == 0
    captured = capsys.readouterr()
    assert "Fleet comparison" in captured.out
    assert "all gates passed" in captured.err


def test_cli_compare_drifted_grid_fails_gate(fleet_a, fleet_b,
                                             tmp_path, capsys):
    from repro.__main__ import main

    (out_a, _), (out_b, _) = fleet_a, fleet_b
    csv_path = tmp_path / "deltas.csv"
    assert main(["compare", str(out_a), str(out_b),
                 "--fail-on", "mobile_mean_ms:0.01",
                 "--csv", str(csv_path)]) == 1
    captured = capsys.readouterr()
    assert "not in baseline" in captured.err
    assert "FAIL" in captured.err
    assert csv_path.exists()


def test_cli_compare_json_output(fleet_a, capsys):
    from repro.__main__ import main

    out, _ = fleet_a
    assert main(["compare", str(out), str(out), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["added"] == [] and parsed["removed"] == []


def test_cli_compare_usage_errors(fleet_a, tmp_path, capsys):
    from repro.__main__ import main

    out, _ = fleet_a
    assert main(["compare", str(out)]) == 2
    assert "at least two" in capsys.readouterr().err
    assert main(["compare", str(out), str(tmp_path / "missing")]) == 2
    assert "neither a fleet" in capsys.readouterr().err
    assert main(["compare", str(out), str(out),
                 "--fail-on", "bogus:1"]) == 2
    assert "METRIC:PCT" in capsys.readouterr().err


def test_cli_non_compare_commands_reject_stray_paths(fleet_a, capsys):
    """The DIR positionals belong to compare; any other command must
    still error on unexpected positionals instead of ignoring them."""
    from repro.__main__ import main

    out, _ = fleet_a
    with pytest.raises(SystemExit) as excinfo:
        main(["evaluate", str(out)])
    assert excinfo.value.code == 2
    assert "unrecognized arguments for evaluate" in \
        capsys.readouterr().err
