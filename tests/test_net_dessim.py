"""Packet-level DES transport vs the analytic latency model."""

import numpy as np
import pytest

from repro import units
from repro.geo import GeoPoint
from repro.net import Node, NodeKind, Topology
from repro.net.dessim import PacketNetwork
from repro.net.queueing import mm1_wait
from repro.sim import RngRegistry, Simulator


def make_chain(rate_bps=units.gbps(1.0)):
    """a -- r1 -- r2 -- b, ~11 km legs."""
    topo = Topology("chain")
    coords = [(46.60, 14.30), (46.70, 14.30), (46.80, 14.30),
              (46.90, 14.30)]
    names = ["a", "r1", "r2", "b"]
    kinds = [NodeKind.SERVER, NodeKind.ROUTER, NodeKind.ROUTER,
             NodeKind.SERVER]
    for name, kind, (lat, lon) in zip(names, kinds, coords):
        topo.add_node(Node(name, kind, GeoPoint(lat, lon), asn=1))
    for a, b in zip(names, names[1:]):
        topo.connect(a, b, rate_bps=rate_bps)
    return topo


def test_single_packet_matches_analytic_latency():
    """On an idle network, DES latency equals the analytic breakdown
    exactly (no queueing anywhere)."""
    topo = make_chain()
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    path = ["a", "r1", "r2", "b"]
    size = units.bytes_(1500)
    done = net.send(path, size)
    sim.run()
    packet = done.value
    expected = topo.path_latency(path, size).total
    assert packet.latency_s == pytest.approx(expected, rel=1e-9)


def test_packets_are_delivered_in_order():
    topo = make_chain()
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    path = ["a", "r1", "r2", "b"]
    events = [net.send(path, units.bytes_(1500)) for _ in range(50)]
    sim.run()
    delivery_times = [ev.value.delivered_at for ev in events]
    assert delivery_times == sorted(delivery_times)
    assert net.delivered.count == 50


def test_back_to_back_packets_pipeline_on_the_wire():
    """The second of two back-to-back packets is delayed by one
    serialization time, not a full store-and-forward round."""
    topo = make_chain(rate_bps=units.mbps(10.0))   # slow: tx dominates
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    path = ["a", "r1", "r2", "b"]
    size = units.bytes_(1500)
    first = net.send(path, size)
    second = net.send(path, size)
    sim.run()
    tx = topo.link("a", "r1").transmission_delay(size)
    gap = second.value.delivered_at - first.value.delivered_at
    assert gap == pytest.approx(tx, rel=1e-6)


def test_cross_traffic_queueing_converges_to_mm1():
    """Poisson cross-traffic on the bottleneck: DES waiting matches the
    analytic M/M/1 mean the campaign samples from.

    Arrivals are Poisson and sizes exponential => the bottleneck approximates
    an M/M/1 queue at rho = lambda * E[S]."""
    topo = make_chain(rate_bps=units.mbps(100.0))
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    rng = RngRegistry(31).stream("cross")
    mean_size = units.bytes_(1500)
    service = topo.link("r1", "r2").transmission_delay(mean_size)
    rho = 0.7
    rate = rho / service

    def source():
        for _ in range(30_000):
            yield sim.timeout(float(rng.exponential(1.0 / rate)))
            size = max(float(rng.exponential(mean_size)), 64.0)
            net.send(["r1", "r2"], size)

    sim.process(source())
    sim.run()
    # Mean DES latency = wait + service + propagation.
    prop = topo.link("r1", "r2").propagation_delay()
    waits = net.delivered.values - prop
    measured_wait_plus_service = float(np.mean(waits))
    expected = mm1_wait(rho, service) + service
    assert measured_wait_plus_service == pytest.approx(expected, rel=0.1)


def test_send_validation():
    topo = make_chain()
    net = PacketNetwork(Simulator(), topo)
    with pytest.raises(ValueError):
        net.send(["a"], 100.0)
    with pytest.raises(KeyError):
        net.send(["a", "b"], 100.0)       # no direct a--b link
    with pytest.raises(ValueError):
        net.send(["a", "r1"], 0.0)


def test_poisson_source_validation():
    topo = make_chain()
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    rng = RngRegistry(1).stream("x")
    with pytest.raises(ValueError):
        net.poisson_source(["a", "r1"], rate_pps=0.0, size_bits=100.0,
                           count=1, rng=rng)
    with pytest.raises(ValueError):
        net.poisson_source(["a", "r1"], rate_pps=1.0, size_bits=100.0,
                           count=0, rng=rng)


def test_latency_before_delivery_raises():
    from repro.net.dessim import Packet
    undelivered = Packet(packet_id=0, path=("a", "b"), size_bits=1.0,
                         created_at=0.0)
    with pytest.raises(ValueError):
        _ = undelivered.latency_s
    topo = make_chain()
    sim = Simulator()
    net = PacketNetwork(sim, topo)
    done = net.send(["a", "r1"], 100.0)
    sim.run()
    assert done.value.latency_s > 0


def test_two_flows_share_a_bottleneck():
    """Two flows through one slow link: each sees more latency than it
    would alone — the interaction the analytic model cannot express."""
    topo = make_chain(rate_bps=units.mbps(20.0))
    size = units.bytes_(1500)

    def run(flows: int) -> float:
        sim = Simulator()
        net = PacketNetwork(sim, topo)
        rng = RngRegistry(17).stream("flows", flows)
        service = topo.link("r1", "r2").transmission_delay(size)
        per_flow_rate = 0.4 / service     # each flow offers rho=0.4
        for _ in range(flows):
            sim.process(net.poisson_source(
                ["r1", "r2"], rate_pps=per_flow_rate,
                size_bits=size, count=5_000, rng=rng))
        sim.run()
        return net.delivered.summary().mean

    alone = run(1)       # rho = 0.4
    together = run(2)    # rho = 0.8
    assert together > alone
