"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.core import KnobResult, SensitivityAnalysis


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis(seed=42, mean_positions_per_cell=2.0)


@pytest.fixture(scope="module")
def baseline(analysis):
    return analysis.baseline()


def test_baseline_matches_default_campaign(baseline):
    assert 0.060 < baseline.mobile_mean_s < 0.090
    assert baseline.scale == 1.0


@pytest.mark.parametrize("knob", SensitivityAnalysis.KNOBS)
def test_increasing_any_knob_increases_mean(analysis, baseline, knob):
    """Every knob models a latency *cost*; scaling one up must not
    reduce the field mean (monotone mechanism, not a fitted artifact)."""
    result = analysis.run_knob(knob, 1.3)
    assert result.mobile_mean_s >= baseline.mobile_mean_s - 1e-4


def test_elasticities_are_moderate(analysis):
    """No single knob dominates: all elasticities stay below 1.5, so a
    20% calibration error moves the headline by far less than the
    reproduction tolerance."""
    for knob, value in analysis.elasticities(scale=1.2).items():
        assert -0.1 < value < 1.5, knob


def test_downscaling_reduces_mean(analysis, baseline):
    result = analysis.run_knob("cgnat_load", 0.7)
    assert result.mobile_mean_s < baseline.mobile_mean_s


def test_unknown_knob_rejected(analysis):
    with pytest.raises(KeyError):
        analysis.run_knob("flux_capacitor", 1.1)


def test_elasticity_requires_perturbation(baseline):
    with pytest.raises(ValueError):
        baseline.elasticity(baseline)


def test_sweep_shape(analysis):
    sweep = analysis.sweep(scales=(0.9, 1.1))
    assert set(sweep) == set(SensitivityAnalysis.KNOBS)
    for results in sweep.values():
        assert [r.scale for r in results] == [0.9, 1.1]
