"""Tests for the pluggable executor API: the backend registry, the
three shipped backends, submit/map semantics, and ownership rules."""

import pytest

from repro.fleet import (
    BACKENDS,
    BatchExecutor,
    ProcessPoolBackend,
    RunOutcome,
    SerialExecutor,
    SweepAxis,
    SweepSpec,
    ThreadedExecutor,
    make_executor,
    run_one,
    run_sweep,
)
from repro.scenarios import klagenfurt

AXIS = "campaign.handover_interruption_s"
DENSITY = 2.0


def small_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),),
        seeds=(42,),
        density=DENSITY,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_names_the_five_backends():
    assert set(BACKENDS) == {"serial", "batch", "process", "thread",
                             "remote"}
    assert isinstance(make_executor("serial"), SerialExecutor)
    assert isinstance(make_executor("batch"), BatchExecutor)
    assert isinstance(make_executor("process", jobs=2), ProcessPoolBackend)
    assert isinstance(make_executor("thread", jobs=2), ThreadedExecutor)


def test_remote_backend_requires_a_server_url():
    with pytest.raises(ValueError, match="server"):
        make_executor("remote")


def test_make_executor_rejects_unknown_options():
    with pytest.raises(ValueError, match="bad options"):
        make_executor("serial", frobnicate=True)


def test_unknown_backend_is_clean_error():
    with pytest.raises(ValueError, match="unknown backend 'dask'"):
        make_executor("dask")


def test_backend_validates_jobs():
    with pytest.raises(ValueError, match="jobs must be"):
        ThreadedExecutor(jobs=0)


# ---------------------------------------------------------------------------
# The protocol surface
# ---------------------------------------------------------------------------

def test_serial_submit_returns_resolved_outcome_future():
    run = small_sweep().expand()[0]
    with SerialExecutor() as executor:
        outcome = executor.submit(run).result()
    assert isinstance(outcome, RunOutcome)
    assert outcome.record.run_id == run.run_id
    assert outcome.wall_s > 0.0
    assert not outcome.cached


def test_thread_submit_and_map_agree():
    runs = small_sweep().expand()
    with ThreadedExecutor(jobs=2) as executor:
        submitted = [executor.submit(run) for run in runs]
        via_submit = [future.result().record.to_dict()
                      for future in submitted]
    with ThreadedExecutor(jobs=2) as executor:
        via_map = [outcome.record.to_dict()
                   for outcome in executor.map(runs)]
    assert via_submit == via_map


def test_map_on_empty_run_list_yields_nothing():
    with ThreadedExecutor(jobs=2) as executor:
        assert list(executor.map([])) == []


# ---------------------------------------------------------------------------
# Backend equivalence (the determinism contract across the seam)
# ---------------------------------------------------------------------------

def test_all_backends_produce_bit_identical_records():
    sweep = small_sweep(seeds=(42, 43))
    serial = run_sweep(sweep, executor="serial")
    threaded = run_sweep(sweep, executor="thread", jobs=2)
    pooled = run_sweep(sweep, executor="process", jobs=2)
    assert [r.to_dict() for r in serial.records] == \
        [r.to_dict() for r in threaded.records] == \
        [r.to_dict() for r in pooled.records]
    assert serial.backend == "serial"
    assert threaded.backend == "thread"
    assert pooled.backend == "process"


def test_jobs_alone_still_selects_the_backend():
    # The pre-executor API: jobs<=1 batched in-process, jobs>1
    # process pool.
    assert run_sweep(small_sweep()).backend == "batch"
    assert run_sweep(small_sweep(), jobs=2).backend == "process"


def test_caller_supplied_executor_is_left_open():
    executor = ThreadedExecutor(jobs=2)
    first = run_sweep(small_sweep(), executor=executor)
    second = run_sweep(small_sweep(), executor=executor)  # still usable
    executor.close()
    assert [r.to_dict() for r in first.records] == \
        [r.to_dict() for r in second.records]


# ---------------------------------------------------------------------------
# run_one fallback id (collision fix)
# ---------------------------------------------------------------------------

def test_default_run_id_distinguishes_variants():
    base = klagenfurt()
    variant = base.with_overrides({AXIS: 31e-3})
    record_a = run_one(base.to_json(), 42, DENSITY)
    record_b = run_one(variant.to_json(), 42, DENSITY)
    # same scenario name and seed, different overrides: ids must differ
    assert record_a.scenario == record_b.scenario == "klagenfurt"
    assert record_a.run_id != record_b.run_id
    assert record_a.run_id.startswith("klagenfurt-s42-")


def test_default_run_id_is_stable_across_calls():
    spec_json = klagenfurt().to_json()
    assert run_one(spec_json, 42, DENSITY).run_id == \
        run_one(spec_json, 42, DENSITY).run_id


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_sweep_thread_backend(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--scenario", "klagenfurt",
                 "--set", f"{AXIS}=0.03,0.06",
                 "--seeds", "42", "--backend", "thread", "--jobs", "2",
                 "--density", "2"]) == 0
    stdout = capsys.readouterr().out
    assert "backend=thread" in stdout
    assert "thread backend, jobs=2" in stdout


def test_cli_progress_flag_gates_per_run_lines(capsys):
    from repro.__main__ import main

    args = ["sweep", "--scenario", "klagenfurt",
            "--set", f"{AXIS}=0.03,0.06", "--seeds", "42",
            "--density", "2"]
    assert main(args) == 0
    quiet = capsys.readouterr().out
    assert "[1/2]" not in quiet
    assert main(args + ["--progress"]) == 0
    chatty = capsys.readouterr().out
    assert "[1/2]" in chatty and "[2/2]" in chatty
    assert "ms mobile mean" in chatty
