"""Tests for deterministic RNG streams and monitors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import RngRegistry, SeriesMonitor, TimeWeightedMonitor
from repro.sim.rng import stable_seed


# ---------------------------------------------------------------------------
# RngRegistry
# ---------------------------------------------------------------------------

def test_same_name_same_sequence():
    a = RngRegistry(seed=7).stream("channel", "C1")
    b = RngRegistry(seed=7).stream("channel", "C1")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.fresh("channel", "C1")
    b = reg.fresh("channel", "C2")
    assert not np.array_equal(a.random(16), b.random(16))


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert not np.array_equal(a.random(16), b.random(16))


def test_stream_is_cached_and_stateful():
    reg = RngRegistry(seed=3)
    s1 = reg.stream("mob")
    first = s1.random(4)
    s2 = reg.stream("mob")
    assert s1 is s2
    # continues the sequence rather than restarting
    assert not np.array_equal(first, s2.random(4))


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(seed=11)
    a1 = reg1.stream("a").random(8)
    b1 = reg1.stream("b").random(8)

    reg2 = RngRegistry(seed=11)
    b2 = reg2.stream("b").random(8)
    a2 = reg2.stream("a").random(8)

    assert np.array_equal(a1, a2)
    assert np.array_equal(b1, b2)


def test_spawn_creates_independent_namespace():
    reg = RngRegistry(seed=5)
    child = reg.spawn("campaign", 0)
    assert child.seed != reg.seed
    # deterministic: same spawn path gives same child seed
    assert reg.spawn("campaign", 0).seed == child.seed


def test_empty_stream_name_rejected():
    with pytest.raises(ValueError):
        RngRegistry(seed=0).stream()


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry(seed="42")  # type: ignore[arg-type]


def test_stable_seed_is_stable():
    assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)
    assert stable_seed("a") != stable_seed("b")


@given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=4))
def test_stable_seed_in_64bit_range(parts):
    s = stable_seed(*parts)
    assert 0 <= s < 2 ** 64


def test_stable_seed_no_separator_collision():
    # "ab"+"c" must differ from "a"+"bc"
    assert stable_seed("ab", "c") != stable_seed("a", "bc")


# ---------------------------------------------------------------------------
# SeriesMonitor
# ---------------------------------------------------------------------------

def test_series_monitor_summary():
    mon = SeriesMonitor("rtt")
    for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        mon.record(float(t), v)
    s = mon.summary()
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))


def test_series_monitor_empty_summary_is_nan():
    s = SeriesMonitor().summary()
    assert s.count == 0
    assert math.isnan(s.mean)


def test_series_monitor_growth_beyond_initial_capacity():
    mon = SeriesMonitor()
    n = 10_000
    mon.extend(np.arange(n, dtype=float), np.arange(n, dtype=float))
    assert mon.count == n
    assert mon.summary().maximum == n - 1


def test_series_monitor_extend_shape_mismatch():
    mon = SeriesMonitor()
    with pytest.raises(ValueError):
        mon.extend(np.zeros(3), np.zeros(4))


def test_series_monitor_views_are_readonly():
    mon = SeriesMonitor()
    mon.record(0.0, 1.0)
    with pytest.raises(ValueError):
        mon.values[0] = 99.0


def test_fraction_below():
    mon = SeriesMonitor()
    mon.extend(np.zeros(10), np.arange(10, dtype=float))
    assert mon.fraction_below(5.0) == pytest.approx(0.5)
    assert mon.fraction_below(0.0) == 0.0
    assert mon.fraction_below(100.0) == 1.0


def test_fraction_below_empty_raises():
    with pytest.raises(ValueError):
        SeriesMonitor().fraction_below(1.0)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_series_monitor_matches_numpy(values):
    mon = SeriesMonitor()
    for i, v in enumerate(values):
        mon.record(float(i), v)
    s = mon.summary()
    assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
    assert s.minimum == min(values)
    assert s.maximum == max(values)


# ---------------------------------------------------------------------------
# TimeWeightedMonitor
# ---------------------------------------------------------------------------

def test_time_weighted_mean_simple():
    mon = TimeWeightedMonitor(initial=0.0)
    mon.update(10.0, 1.0)   # 0 for 10s
    mon.update(20.0, 0.0)   # 1 for 10s
    assert mon.mean() == pytest.approx(0.5)


def test_time_weighted_mean_with_until_extension():
    mon = TimeWeightedMonitor(initial=2.0)
    mon.update(5.0, 4.0)    # 2 for 5s
    # then 4 until t=15 -> mean = (2*5 + 4*10)/15 = 50/15
    assert mon.mean(until=15.0) == pytest.approx(50.0 / 15.0)


def test_time_weighted_std_constant_signal_is_zero():
    mon = TimeWeightedMonitor(initial=3.0)
    mon.update(5.0, 3.0)
    mon.update(9.0, 3.0)
    assert mon.std() == pytest.approx(0.0, abs=1e-12)


def test_time_weighted_min_max_track_extremes():
    mon = TimeWeightedMonitor(initial=5.0)
    mon.update(1.0, -2.0)
    mon.update(2.0, 11.0)
    assert mon.minimum == -2.0
    assert mon.maximum == 11.0


def test_time_going_backwards_rejected():
    mon = TimeWeightedMonitor()
    mon.update(5.0, 1.0)
    with pytest.raises(ValueError):
        mon.update(4.0, 2.0)


def test_mean_before_any_update_returns_current():
    mon = TimeWeightedMonitor(initial=7.0)
    assert mon.mean() == 7.0
