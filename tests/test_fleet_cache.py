"""Tests for the content-addressed result cache and resumable fleets:
digest stability, hit/miss/corruption semantics, the zero-recompute
guarantee, and FleetStore.resume."""

import json

import pytest

from repro.core.compiled import CompiledScenario
from repro.core.evaluation import InfrastructureEvaluation
from repro.fleet import (
    CachingExecutor,
    FleetStore,
    ResultCache,
    SerialExecutor,
    SweepAxis,
    SweepSpec,
    run_key,
    run_one,
    run_sweep,
)
from repro.fleet.cache import canonical_dumps
from repro.scenarios import klagenfurt, skopje

AXIS = "campaign.handover_interruption_s"
DENSITY = 2.0


def small_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),),
        seeds=(42,),
        density=DENSITY,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


@pytest.fixture
def eval_counter(monkeypatch):
    """Counts every run evaluation this test triggers — a full
    InfrastructureEvaluation or a compiled-scenario sampling phase
    (the batch backend's unit of work)."""
    calls = []
    real_run = InfrastructureEvaluation.run
    real_evaluate = CompiledScenario.evaluate

    def counting_run(self, *args, **kwargs):
        calls.append(1)
        return real_run(self, *args, **kwargs)

    def counting_evaluate(self, *args, **kwargs):
        calls.append(1)
        return real_evaluate(self, *args, **kwargs)

    monkeypatch.setattr(InfrastructureEvaluation, "run", counting_run)
    monkeypatch.setattr(CompiledScenario, "evaluate", counting_evaluate)
    return calls


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def test_run_key_is_stable_and_input_sensitive():
    spec = klagenfurt()
    key = run_key(spec, 42, DENSITY)
    assert len(key) == 64 and int(key, 16) >= 0
    # stable across calls and across a JSON round-trip of the spec
    assert run_key(spec, 42, DENSITY) == key
    assert run_key(type(spec).from_json(spec.to_json()), 42, DENSITY) == key
    # every component of (spec, seed, density) is load-bearing
    assert run_key(spec, 43, DENSITY) != key
    assert run_key(spec, 42, DENSITY + 1) != key
    assert run_key(spec.with_overrides({AXIS: 31e-3}), 42, DENSITY) != key
    assert run_key(skopje(), 42, DENSITY) != key


def test_canonical_dumps_ignores_key_order():
    assert canonical_dumps({"b": 1, "a": [1.5, {"y": 2, "x": 3}]}) == \
        canonical_dumps({"a": [1.5, {"x": 3, "y": 2}], "b": 1})


def test_summary_canonical_json_is_digest_stable():
    record = run_one(klagenfurt().to_json(), 42, DENSITY)
    text = record.summary.canonical_json()
    rebuilt = type(record.summary).from_dict(json.loads(text))
    assert rebuilt.canonical_json() == text


# ---------------------------------------------------------------------------
# ResultCache store semantics
# ---------------------------------------------------------------------------

def test_cache_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    record = run_one(klagenfurt().to_json(), 42, DENSITY)
    key = run_key(klagenfurt(), 42, DENSITY)
    assert cache.get(key) is None
    assert key not in cache
    cache.put(key, record)
    assert key in cache
    assert len(cache) == 1
    loaded = cache.get(key)
    assert loaded.to_dict() == record.to_dict()
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_corrupted_entry_is_detected_and_dropped(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    record = run_one(klagenfurt().to_json(), 42, DENSITY)
    key = run_key(klagenfurt(), 42, DENSITY)
    path = cache.put(key, record)

    # Flip a value inside the stored record: the payload digest no
    # longer matches, so the entry must read as a miss and be removed.
    entry = json.loads(path.read_text())
    entry["record"]["seed"] = 99
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()

    # Unparseable garbage is handled the same way.
    cache.put(key, record)
    cache.path_for(key).write_text("{not json")
    assert cache.get(key) is None
    assert cache.stats.corrupt == 2


# ---------------------------------------------------------------------------
# CachingExecutor: the zero-recompute guarantee
# ---------------------------------------------------------------------------

def test_warm_sweep_runs_zero_evaluations(tmp_path, eval_counter):
    sweep = small_sweep(seeds=(42, 43))
    cache = tmp_path / "cache"
    cold = run_sweep(sweep, cache=cache)
    assert len(eval_counter) == sweep.run_count
    assert cold.cached_count == 0

    del eval_counter[:]
    warm = run_sweep(sweep, cache=cache)
    assert eval_counter == []                 # nothing recomputed
    assert warm.cached_count == len(warm) == sweep.run_count
    assert [r.to_dict() for r in warm.records] == \
        [r.to_dict() for r in cold.records]   # bit-identical


def test_corrupt_entry_triggers_exactly_one_recompute(tmp_path,
                                                      eval_counter):
    sweep = small_sweep(seeds=(42, 43))
    cache = ResultCache(tmp_path / "cache")
    cold = run_sweep(sweep, cache=cache)
    victim = cache.path_for(cache.key_for(sweep.expand()[1]))
    victim.write_text("truncated garba")

    del eval_counter[:]
    warm = run_sweep(sweep, cache=cache)
    assert len(eval_counter) == 1             # only the corrupt one
    assert warm.cached_count == len(warm) - 1
    assert [r.to_dict() for r in warm.records] == \
        [r.to_dict() for r in cold.records]


def test_cache_serves_across_sweeps_with_different_labels(tmp_path,
                                                          eval_counter):
    cache = tmp_path / "cache"
    run_sweep(small_sweep(), cache=cache)

    # Same (spec, seed, density) points reached through a renamed axis:
    # different run ids and variant labels, same content addresses.
    relabelled = small_sweep(
        axes=(SweepAxis(AXIS, (30e-3, 60e-3), name="handover"),))
    del eval_counter[:]
    result = run_sweep(relabelled, cache=cache)
    assert eval_counter == []
    assert result.cached_count == len(result)
    assert [r.axis_value("handover") for r in result.records] == \
        [30e-3, 60e-3]                        # labels follow the sweep


def test_caching_executor_submit_hits_and_stores(tmp_path, eval_counter):
    run = small_sweep().expand()[0]
    with CachingExecutor(SerialExecutor(), tmp_path / "cache") as executor:
        cold = executor.submit(run).result()
        warm = executor.submit(run).result()
    assert not cold.cached and warm.cached
    assert warm.wall_s == 0.0
    assert warm.record.to_dict() == cold.record.to_dict()
    assert len(eval_counter) == 1


# ---------------------------------------------------------------------------
# Resumable fleets
# ---------------------------------------------------------------------------

def test_resume_runs_only_the_missing_records(tmp_path, eval_counter):
    sweep = small_sweep(seeds=(42, 43))
    out = tmp_path / "fleet"
    complete = run_sweep(sweep, out=out)
    store = FleetStore(out)

    victims = [complete.records[1].run_id, complete.records[2].run_id]
    for run_id in victims:
        (out / "runs" / f"{run_id}.json").unlink()
    assert {run.run_id for run in store.missing_runs()} == set(victims)

    del eval_counter[:]
    resumed = store.resume()
    assert len(eval_counter) == 2             # only the deleted pair
    assert [r.to_dict() for r in resumed.records] == \
        [r.to_dict() for r in complete.records]
    assert resumed.cached_count == len(resumed) - 2
    # the directory is whole again
    assert store.missing_runs() == ()
    assert store.read_manifest()["complete"] is True


def test_interrupted_sweep_leaves_a_resumable_directory(tmp_path):
    """Kill the executor after the first record: begin() + streamed
    writes must leave enough on disk for resume() to finish the job."""
    sweep = small_sweep(seeds=(42, 43))
    out = tmp_path / "fleet"

    class Boom(RuntimeError):
        pass

    class ExplodingExecutor(SerialExecutor):
        def map(self, runs):
            yield from super().map(runs[:1])
            raise Boom("simulated crash mid-sweep")

    with pytest.raises(Boom):
        run_sweep(sweep, executor=ExplodingExecutor(), out=out)

    store = FleetStore(out)
    assert store.read_manifest()["complete"] is False
    assert len(store.missing_runs()) == sweep.run_count - 1

    resumed = store.resume()
    assert len(resumed) == sweep.run_count
    assert resumed.cached_count == 1          # the survivor was reused
    assert [r.to_dict() for r in resumed.records] == \
        [r.to_dict() for r in run_sweep(sweep).records]


def test_resume_on_missing_manifest_is_clean_error(tmp_path):
    with pytest.raises(FileNotFoundError, match="no fleet manifest"):
        FleetStore(tmp_path / "nowhere").resume()


def test_future_manifest_schema_is_rejected(tmp_path):
    out = tmp_path / "fleet"
    run_sweep(small_sweep(), out=out)
    manifest = json.loads((out / "manifest.json").read_text())
    manifest["schema"] = 99
    (out / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="schema 99 is newer"):
        FleetStore(out).resume()


def test_v1_manifest_still_loads(tmp_path):
    out = tmp_path / "fleet"
    result = run_sweep(small_sweep(), out=out)
    manifest = json.loads((out / "manifest.json").read_text())
    for key in ("schema", "backend", "complete"):
        del manifest[key]
    for entry in manifest["runs"]:
        del entry["cached"]
    (out / "manifest.json").write_text(json.dumps(manifest))
    loaded = FleetStore(out).load()
    assert [r.to_dict() for r in loaded.records] == \
        [r.to_dict() for r in result.records]
    assert loaded.backend == "serial"
    assert loaded.cached_count == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_cache_second_invocation_is_all_cached(tmp_path, capsys):
    from repro.__main__ import main

    args = ["sweep", "--scenario", "klagenfurt",
            "--set", f"{AXIS}=0.03,0.06", "--seeds", "42",
            "--density", "2", "--cache", str(tmp_path / "cache")]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "records reused" not in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "cache/resume: 2/2 records reused without recompute" in warm


def test_cli_resume_finishes_truncated_fleet(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "fleet"
    assert main(["sweep", "--scenario", "klagenfurt",
                 "--set", f"{AXIS}=0.03,0.06", "--seeds", "42",
                 "--density", "2", "--out", str(out)]) == 0
    capsys.readouterr()
    victim = next(iter((out / "runs").glob("*.json")))
    victim.unlink()

    assert main(["sweep", "--resume", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "re-ran 1 missing runs, reused 1" in stdout
    assert "cache/resume: 1/2 records reused without recompute" in stdout
    assert victim.exists()


def test_cli_resume_without_out_is_clean_error(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--resume"]) == 2
    assert "--resume needs --out" in capsys.readouterr().err
