"""Tests for the fleet service: wire contracts, the lease-based
broker (fake clock — order, expiry, dedup, verification, cache
prefill), the HTTP server + client + worker end to end on localhost,
and the CLI surface.  The load-bearing property throughout: records
coming back through serve + workers are bit-identical to a serial
``run_sweep`` of the same sweep, including after a worker dies
mid-fleet."""

import json
import socket
import threading
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

import repro
from repro.__main__ import main
from repro.fleet import (
    FleetStore,
    ProgressEvent,
    RemoteExecutor,
    ResultCache,
    SweepAxis,
    SweepSpec,
    run_sweep,
)
from repro.scenarios import klagenfurt
from repro.service import (
    API_VERSION,
    BrokerBusy,
    ContractError,
    FleetBroker,
    ReproService,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    run_worker,
)
from repro.service.broker import RUNS_JOB_MANIFEST
from repro.service.contracts import (
    FleetStatus,
    Health,
    LeaseGrant,
    ResultAck,
    ResultSubmission,
    SubmitAck,
)

AXIS = "campaign.handover_interruption_s"
DENSITY = 2.0


def small_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),),
        seeds=(42,),
        density=DENSITY,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


@pytest.fixture(scope="module")
def sweep():
    return small_sweep()


@pytest.fixture(scope="module")
def runs(sweep):
    return sweep.expand()


@pytest.fixture(scope="module")
def serial_result(sweep):
    """The bit-identity baseline every distributed path must match."""
    return run_sweep(sweep, executor="serial")


@pytest.fixture(scope="module")
def serial_records(serial_result):
    return {record.run_id: record for record in serial_result.records}


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------

def test_contracts_round_trip_through_dicts():
    payloads = [
        Health(version="1.1.0", uptime_s=3.5, fleets=2, running=1,
               cache={"entries": 4}),
        SubmitAck(fleet_id="fleet-0001", total=4, cached=1),
        FleetStatus(fleet_id="fleet-0001", state="running", total=4,
                    done=1, leased=2, pending=1, cached=0, workers=2,
                    wall_s=1.25),
        LeaseGrant(lease_id="fleet-0001:0:1", fleet_id="fleet-0001",
                   run={"run_id": "r0"}, ttl_s=60.0),
        ResultSubmission(lease_id="fleet-0001:0:1",
                         record={"run_id": "r0"}, wall_s=0.5),
        ResultSubmission(lease_id="fleet-0001:0:1", error="boom"),
        ResultAck(accepted=True),
        ResultAck(accepted=False, duplicate=True),
    ]
    for payload in payloads:
        data = json.loads(json.dumps(payload.to_dict()))
        assert data["api"] == API_VERSION
        assert type(payload).from_dict(data) == payload


def test_contracts_reject_newer_api_versions():
    data = SubmitAck(fleet_id="f", total=1, cached=0).to_dict()
    data["api"] = API_VERSION + 1
    with pytest.raises(ContractError, match="api version"):
        SubmitAck.from_dict(data)


def test_contracts_reject_missing_fields():
    with pytest.raises(ContractError, match="missing"):
        SubmitAck.from_dict({"api": API_VERSION, "total": 3})


def test_result_submission_needs_exactly_one_of_record_and_error():
    with pytest.raises(ContractError, match="exactly one"):
        ResultSubmission(lease_id="x")
    with pytest.raises(ContractError, match="exactly one"):
        ResultSubmission(lease_id="x", record={"run_id": "r"},
                         error="boom")


def test_fleet_status_rejects_unknown_states():
    with pytest.raises(ContractError, match="state"):
        FleetStatus(fleet_id="f", state="paused", total=1, done=0,
                    leased=0, pending=1, cached=0, workers=0, wall_s=0.0)


def test_progress_event_round_trip_and_line(serial_records):
    record = next(iter(serial_records.values()))
    event = ProgressEvent.from_record(1, 2, record, wall_s=0.25)
    assert event.line().startswith(f"  [1/2] {record.run_id}: ")
    assert event.line().endswith("ms mobile mean")
    assert ProgressEvent.from_dict(event.to_dict()) == event


def test_progress_event_decodes_service_wire_envelope(serial_records):
    record = next(iter(serial_records.values()))
    event = ProgressEvent.from_record(2, 2, record, cached=True)
    wire = dict(event.to_dict(), event="run", fleet_id="fleet-0001")
    assert ProgressEvent.from_dict(wire) == event


# ---------------------------------------------------------------------------
# Broker (fake clock, no sockets)
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(tmp_path, clock):
    return FleetBroker(tmp_path / "fleets", lease_ttl_s=10.0,
                       clock=clock)


def _post(broker, grant, record, wall_s=0.01):
    return broker.submit_result(ResultSubmission(
        lease_id=grant.lease_id, record=record.to_dict(),
        wall_s=wall_s))


def test_broker_leases_in_expansion_order(broker, sweep, runs):
    broker.submit_sweep(sweep)
    granted = [broker.lease("w1").run["run_id"],
               broker.lease("w2").run["run_id"]]
    assert granted == [run.run_id for run in runs]
    assert broker.lease("w3") is None   # queue drained


def test_broker_completes_a_fleet(broker, sweep, runs, serial_records):
    ack = broker.submit_sweep(sweep)
    assert ack.total == 2 and ack.cached == 0
    for _ in runs:
        grant = broker.lease("w1")
        result = _post(broker, grant,
                       serial_records[grant.run["run_id"]])
        assert result.accepted
    status = broker.status(ack.fleet_id)
    assert status.complete and status.done == 2 and status.workers == 1
    # The durable fleet directory is a normal, loadable fleet store.
    loaded = FleetStore(broker.fleet_dir(ack.fleet_id)).load()
    assert loaded.backend == "service"
    assert [r.to_dict() for r in loaded.records] == \
        [serial_records[run.run_id].to_dict() for run in runs]


def test_broker_expires_leases_and_requeues(broker, sweep, clock,
                                            serial_records):
    ack = broker.submit_sweep(sweep)
    dead = broker.lease("doomed")
    clock.advance(11.0)   # past the 10 s TTL
    assert broker.expire_leases() == 1
    assert broker.requeues == 1
    # The same run comes back with a new lease generation.
    grant = broker.lease("healthy")
    assert grant.run["run_id"] == dead.run["run_id"]
    assert grant.lease_id != dead.lease_id
    events = broker.events_since(ack.fleet_id, 0)[0]
    assert any(event["event"] == "requeued" for event in events)


def test_broker_accepts_a_zombies_late_result_only_once(
        broker, sweep, clock, serial_records):
    broker.submit_sweep(sweep)
    zombie = broker.lease("zombie")
    run_id = zombie.run["run_id"]
    clock.advance(11.0)
    fresh = broker.lease("fresh")    # expiry sweep hands the run over
    assert fresh.run["run_id"] == run_id
    assert _post(broker, fresh, serial_records[run_id]).accepted
    # The zombie finishing afterwards is a duplicate, not an error,
    # and nothing changes.
    late = _post(broker, zombie, serial_records[run_id])
    assert not late.accepted and late.duplicate


def test_broker_rejects_records_that_fail_verification(
        broker, sweep, runs, serial_records):
    broker.submit_sweep(sweep)
    grant = broker.lease("w1")
    other = runs[1] if grant.run["run_id"] == runs[0].run_id else runs[0]
    with pytest.raises(ValueError, match="content identity"):
        _post(broker, grant, serial_records[other.run_id])
    # The slot is still leased to w1; nothing was stored.
    assert broker.status(grant.fleet_id).done == 0


def test_broker_rejects_unparseable_records(broker, sweep):
    broker.submit_sweep(sweep)
    grant = broker.lease("w1")
    with pytest.raises(ContractError, match="parse"):
        broker.submit_result(ResultSubmission(
            lease_id=grant.lease_id, record={"run_id": "garbage"}))


def test_broker_requeues_reported_failures_immediately(
        broker, sweep, serial_records):
    broker.submit_sweep(sweep)
    grant = broker.lease("w1")
    ack = broker.submit_result(ResultSubmission(
        lease_id=grant.lease_id, error="RuntimeError: boom"))
    assert ack.requeued and not ack.accepted
    # No clock advance needed: the run is immediately leasable again.
    again = broker.lease("w2")
    assert again.run["run_id"] == grant.run["run_id"]


def test_broker_prefills_from_the_shared_cache(tmp_path, clock, sweep,
                                               runs, serial_records):
    cache = ResultCache(tmp_path / "cache")
    for run in runs:
        cache.put(run.spec_key(), serial_records[run.run_id])
    broker = FleetBroker(tmp_path / "fleets", cache=cache, clock=clock)
    ack = broker.submit_sweep(sweep)
    assert ack.cached == 2
    status = broker.status(ack.fleet_id)
    assert status.complete and status.cached == 2
    assert broker.lease("w1") is None   # nothing left to do
    loaded = FleetStore(broker.fleet_dir(ack.fleet_id)).load()
    assert [r.to_dict() for r in loaded.records] == \
        [serial_records[run.run_id].to_dict() for run in runs]


def test_broker_validates_run_list_submissions(broker, runs):
    with pytest.raises(ValueError, match="at least one"):
        broker.submit_runs([])
    with pytest.raises(ValueError, match="duplicate"):
        broker.submit_runs([runs[0], runs[0]])


def test_broker_unknown_ids_raise_lookup_errors(broker):
    with pytest.raises(LookupError):
        broker.status("fleet-9999")
    with pytest.raises(LookupError):
        broker.submit_result(ResultSubmission(
            lease_id="fleet-9999:0:1", record={"run_id": "r"}))


def test_broker_rejects_nonpositive_ttl(tmp_path):
    with pytest.raises(ValueError, match="positive"):
        FleetBroker(tmp_path, lease_ttl_s=0.0)


# ---------------------------------------------------------------------------
# HTTP end to end: serve + client + workers on localhost
# ---------------------------------------------------------------------------

def _start_worker(url, **kwargs):
    options = dict(poll_s=0.05, max_idle_s=1.0)
    options.update(kwargs)
    thread = threading.Thread(target=run_worker, args=(url,),
                              kwargs=options, daemon=True)
    thread.start()
    return thread


def _wait_complete(client, fleet_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status(fleet_id)
        if status.complete:
            return status
        time.sleep(0.05)
    raise AssertionError(f"fleet {fleet_id} did not complete")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = ReproService(tmp_path_factory.mktemp("service-root"), port=0)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


@pytest.fixture(scope="module")
def completed_fleet(service, client, sweep):
    """One sweep submitted over HTTP and drained by two workers."""
    ack = client.submit_sweep(sweep.to_dict())
    workers = [_start_worker(service.url, worker_id=f"e2e-{i}")
               for i in range(2)]
    status = _wait_complete(client, ack.fleet_id)
    for worker in workers:
        worker.join(timeout=30.0)
    return ack.fleet_id, status


def test_e2e_records_are_bit_identical_to_serial(
        completed_fleet, client, runs, serial_records):
    fleet_id, status = completed_fleet
    assert status.done == 2 and status.cached == 0
    for run in runs:
        assert client.record(fleet_id, run.run_id) == \
            serial_records[run.run_id].to_dict()


def test_e2e_fleet_directory_matches_a_local_one(
        completed_fleet, service, runs, serial_records):
    fleet_id, _ = completed_fleet
    loaded = FleetStore(service.broker.fleet_dir(fleet_id)).load()
    assert loaded.backend == "service"
    assert [r.to_dict() for r in loaded.records] == \
        [serial_records[run.run_id].to_dict() for run in runs]


def test_e2e_event_stream_is_ordered_ndjson(completed_fleet, client):
    fleet_id, _ = completed_fleet
    events = list(client.events(fleet_id))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "submitted" and kinds[-1] == "complete"
    run_events = [e for e in events if e["event"] == "run"]
    assert [e["done"] for e in run_events] == [1, 2]
    assert all(e["total"] == 2 and "mobile_mean_ms" in e
               for e in run_events)


def test_e2e_follow_streams_until_complete(completed_fleet, client):
    fleet_id, _ = completed_fleet
    events = list(client.events(fleet_id, follow=True))
    assert events[-1]["event"] == "complete"


def test_healthz_reports_version_uptime_and_cache(service, client):
    health = client.health()
    assert health.version == repro.__version__
    assert health.uptime_s > 0
    assert health.cache["directory"] == str(service.cache_dir)
    assert "entries" in health.cache


def test_startup_gc_ran(service):
    assert service.last_gc.directory == str(service.cache_dir)


def test_scenario_routes(client):
    names = [entry["name"] for entry in client.scenario_index()]
    assert "klagenfurt" in names
    assert client.scenario("klagenfurt")["name"] == "klagenfurt"
    with pytest.raises(ServiceError) as exc_info:
        client.scenario("atlantis")
    assert exc_info.value.status == 404


def test_fleet_listing_includes_the_completed_fleet(
        completed_fleet, client):
    fleet_id, _ = completed_fleet
    assert fleet_id in [status.fleet_id for status in client.fleets()]


def test_malformed_submissions_are_400s(client):
    for body in [{"sweep": {"bases": "nonsense"}},
                 {"runs": []},
                 {"neither": True}]:
        with pytest.raises(ServiceError) as exc_info:
            client._post("/fleets", body)
        assert exc_info.value.status == 400


def test_invalid_json_body_is_a_400(service):
    request = Request(service.url + "/fleets", data=b"{not json",
                      method="POST")
    with pytest.raises(HTTPError) as exc_info:
        urlopen(request, timeout=10.0)
    assert exc_info.value.code == 400


def test_unknown_routes_and_fleets_are_404s(client):
    with pytest.raises(ServiceError) as exc_info:
        client.status("fleet-9999")
    assert exc_info.value.status == 404
    with pytest.raises(ServiceError) as exc_info:
        client._get("/no/such/route")
    assert exc_info.value.status == 404


def test_compare_two_complete_fleets_over_http(
        completed_fleet, service, client, sweep):
    first_id, _ = completed_fleet
    # Resubmitting the same sweep hits the shared cache end to end:
    # the second fleet completes at submit time, no workers involved.
    ack = client.submit_sweep(sweep.to_dict())
    assert ack.cached == ack.total == 2
    report = client.compare(first_id, ack.fleet_id)
    assert report["deltas"]
    pcts = [metric["pct"] for variant in report["deltas"]
            for metric in variant["metrics"]]
    assert pcts and all(pct == 0.0 for pct in pcts)


def test_compare_refuses_a_running_fleet(client, runs):
    ack = client.submit_runs([runs[0].to_dict()])
    with pytest.raises(ServiceError) as exc_info:
        client.compare(ack.fleet_id, ack.fleet_id)
    assert exc_info.value.status == 400


def test_remote_executor_through_run_sweep(
        completed_fleet, service, sweep, serial_result, tmp_path):
    # The cache is warm from the e2e fleet, so the remote backend's
    # full submit -> poll -> collect path runs without local compute.
    result = run_sweep(sweep,
                       executor=RemoteExecutor(server=service.url),
                       out=str(tmp_path / "remote-out"))
    assert result.backend == "remote"
    assert result.cached_count == 2
    assert [r.to_dict() for r in result.records] == \
        [r.to_dict() for r in serial_result.records]
    # The run-list fleet left a lightweight job manifest server-side.
    job_files = list(service.broker.root.glob(f"*/{RUNS_JOB_MANIFEST}"))
    assert job_files


# ---------------------------------------------------------------------------
# Worker death mid-fleet: lease expiry + requeue, still bit-identical
# ---------------------------------------------------------------------------

def test_worker_death_requeues_and_stays_bit_identical(
        tmp_path, runs, serial_records):
    service = ReproService(tmp_path / "root", port=0, lease_ttl_s=0.5)
    service.start()
    try:
        client = ServiceClient(service.url)
        ack = client.submit_runs([run.to_dict() for run in runs])
        # A worker leases the first run and dies without posting.
        doomed = client.lease("doomed")
        assert doomed is not None
        # A healthy worker drains the fleet; it picks up the doomed
        # run once the 0.5 s lease expires.
        worker = _start_worker(service.url, worker_id="healthy",
                               max_idle_s=5.0)
        status = _wait_complete(client, ack.fleet_id)
        worker.join(timeout=60.0)

        assert status.done == 2
        assert status.workers == 1          # only the healthy one landed
        assert service.broker.requeues >= 1
        events = service.broker.events_since(ack.fleet_id, 0)[0]
        assert any(e["event"] == "requeued" for e in events)
        # No double counting, and every record bit-identical to serial.
        for run in runs:
            assert client.record(ack.fleet_id, run.run_id) == \
                serial_records[run.run_id].to_dict()
        fleet_dir = service.broker.fleet_dir(ack.fleet_id)
        assert json.loads(
            (fleet_dir / RUNS_JOB_MANIFEST).read_text())["complete"]
        assert len(list((fleet_dir / "runs").glob("*.json"))) == 2
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Readiness probe
# ---------------------------------------------------------------------------

def test_healthz_is_a_full_readiness_probe(service, client):
    health = client.health()
    assert health.ready and not health.draining
    assert health.queue["fleets"] == health.fleets
    assert {"running", "pending", "leased", "requeues"} <= \
        set(health.queue)
    assert health.journal["segments"] >= 1
    assert health.journal["lag"] >= 0
    assert health.journal["recovered_fleets"] == 0
    assert {"hits", "misses", "stores", "corrupt"} <= set(health.cache)
    assert health.limits["lease_ttl_s"] == 60.0
    assert health.limits["max_fleets"] is None


# ---------------------------------------------------------------------------
# Idempotent submission
# ---------------------------------------------------------------------------

def test_resubmitting_the_same_submission_key_is_idempotent(
        client, runs):
    key = "idem-e2e-0001"
    first = client.submit_runs([runs[0].to_dict()],
                               submission_key=key)
    second = client.submit_runs([runs[0].to_dict()],
                                submission_key=key)
    assert not first.duplicate
    assert second.duplicate
    assert second.fleet_id == first.fleet_id
    assert second.total == first.total


# ---------------------------------------------------------------------------
# Backpressure: bounded queues, lease rate caps, 429 + Retry-After
# ---------------------------------------------------------------------------

def test_broker_lease_rate_cap_throttles_per_worker(tmp_path, clock,
                                                    sweep):
    broker = FleetBroker(tmp_path / "fleets", clock=clock,
                         lease_rate_per_s=2.0)
    broker.submit_sweep(sweep)
    assert broker.lease("w1") is not None
    # A second grant inside the 0.5 s interval is refused with the
    # remaining wait as the hint ...
    with pytest.raises(BrokerBusy) as exc_info:
        broker.lease("w1")
    assert exc_info.value.retry_after_s == pytest.approx(0.5)
    # ... but another worker has its own budget.
    assert broker.lease("w2") is not None
    # An idle poll against a drained queue is never rate-limited.
    assert broker.lease("w1") is None


def test_http_submission_limits_answer_429_with_retry_after(
        tmp_path, runs):
    service = ReproService(tmp_path / "root", port=0, max_fleets=1)
    service.start()
    try:
        client = ServiceClient(service.url)
        client.submit_runs([runs[0].to_dict()])   # in flight, no worker
        with pytest.raises(ServiceError) as exc_info:
            client.submit_runs([runs[1].to_dict()])
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after_s > 0
    finally:
        service.stop()


def test_http_pending_queue_bound_answers_429(tmp_path, runs):
    service = ReproService(tmp_path / "root", port=0, max_pending=1)
    service.start()
    try:
        client = ServiceClient(service.url)
        client.submit_runs([runs[0].to_dict()])
        with pytest.raises(ServiceError) as exc_info:
            client.submit_runs([runs[1].to_dict()])
        assert exc_info.value.status == 429
        assert "queue full" in exc_info.value.message
    finally:
        service.stop()


def test_http_lease_rate_cap_answers_429(tmp_path, runs):
    service = ReproService(tmp_path / "root", port=0,
                           lease_rate_per_s=1e-4)
    service.start()
    try:
        client = ServiceClient(service.url)
        client.submit_runs([run.to_dict() for run in runs])
        assert client.lease("w1") is not None
        with pytest.raises(ServiceError) as exc_info:
            client.lease("w1")
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after_s > 0   # header + body agree
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Drain: graceful degradation before exit
# ---------------------------------------------------------------------------

def test_drain_waits_for_inflight_then_refuses_work(
        tmp_path, runs, serial_records):
    service = ReproService(tmp_path / "root", port=0)
    service.start()
    try:
        client = ServiceClient(service.url)
        ack = client.submit_runs([run.to_dict() for run in runs])
        grant = client.lease("w1")
        record = serial_records[grant.run["run_id"]]

        def finish():
            time.sleep(0.2)
            client.post_result(grant.lease_id, record.to_dict(),
                               wall_s=0.1)

        poster = threading.Thread(target=finish, daemon=True)
        poster.start()
        # Drain blocks until the checked-out lease resolves — results
        # are still accepted while draining, new grants are not.
        assert service.drain(wait_s=10.0)
        poster.join(timeout=5.0)

        health = client.health()
        assert health.draining and not health.ready
        assert client.lease("w2") is None
        with pytest.raises(ServiceError) as exc_info:
            client.submit_runs([runs[0].to_dict()])
        assert exc_info.value.status == 429
        assert client.status(ack.fleet_id).done == 1
        # Compacted + synced on the way down: zero replay lag.
        assert health.journal["lag"] == 0
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Event-stream hygiene: vanished subscribers must not leak threads
# ---------------------------------------------------------------------------

def test_event_stream_reaps_dead_subscriber(tmp_path, runs):
    service = ReproService(tmp_path / "root", port=0,
                           stream_heartbeat_s=0.1)
    service.start()
    try:
        client = ServiceClient(service.url)
        # A fleet that never completes: no workers are running.
        ack = client.submit_runs([run.to_dict() for run in runs])
        host, port = service.httpd.server_address[:2]
        conn = socket.create_connection((host, port), timeout=5.0)
        conn.sendall((f"GET /fleets/{ack.fleet_id}/events?follow=1 "
                      f"HTTP/1.1\r\nHost: {host}\r\n\r\n").encode())
        conn.recv(1024)              # headers + the submitted event
        deadline = time.monotonic() + 5.0
        while (service.active_streams() == 0
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert service.active_streams() == 1
        # The subscriber vanishes without a word.  The idle heartbeat
        # turns the dead socket into a send error within a few beats.
        conn.close()
        while (service.active_streams() > 0
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert service.active_streams() == 0
    finally:
        service.stop()


def test_follow_stream_heartbeats_are_filtered_by_default(
        completed_fleet, client):
    fleet_id, _ = completed_fleet
    events = list(client.events(fleet_id, follow=True))
    assert all(event.get("event") != "heartbeat" for event in events)


# ---------------------------------------------------------------------------
# Worker failure modes: unreachable and nonsense servers
# ---------------------------------------------------------------------------

def test_worker_fails_cleanly_when_server_unreachable():
    slept = []
    with pytest.raises(ServiceUnavailable,
                       match=r"unreachable after 2 attempt"):
        run_worker("http://127.0.0.1:9", max_retries=2,
                   sleep=slept.append)
    assert len(slept) == 1   # one backoff between the two attempts


def test_worker_survives_429_backpressure(tmp_path, runs,
                                          serial_records):
    """A rate-capped worker waits out the server's hint instead of
    dying — and still drains the fleet (cache-warm, so no compute)."""
    service = ReproService(tmp_path / "root", port=0,
                           lease_rate_per_s=20.0)
    service.start()
    try:
        for run in runs:
            service.cache.put(run.spec_key(),
                              serial_records[run.run_id])
        client = ServiceClient(service.url)
        ack = client.submit_runs([run.to_dict() for run in runs])
        # Prefilled from the cache: already complete, the worker just
        # needs to poll through the rate cap without crashing.
        assert client.status(ack.fleet_id).complete
        completed = run_worker(service.url, worker_id="patient",
                               poll_s=0.01, max_idle_s=0.2)
        assert completed == 0
    finally:
        service.stop()


def test_cli_worker_reports_unreachable_server(capsys):
    assert main(["worker", "--server", "http://127.0.0.1:9",
                 "--max-retries", "1"]) == 2
    err = capsys.readouterr().err
    assert "unreachable" in err and "Traceback" not in err


def test_cli_worker_rejects_malformed_server_url(capsys):
    assert main(["worker", "--server", "not-a-url",
                 "--max-retries", "1"]) == 2
    err = capsys.readouterr().err
    assert "invalid server URL" in err and "Traceback" not in err


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_version(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["--version"])
    assert exc_info.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_cli_sweep_remote_needs_a_server(capsys):
    assert main(["sweep", "--backend", "remote"]) == 2
    assert "--server" in capsys.readouterr().err


def test_cli_worker_needs_a_server(capsys):
    assert main(["worker"]) == 2
    assert "--server" in capsys.readouterr().err
