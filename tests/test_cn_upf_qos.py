"""Tests for the UPF pipeline, SmartNIC offload and QoS machinery."""

import pytest

from repro import units
from repro.cn import (
    FIVE_QI,
    ContextAwareRuleEngine,
    QosClass,
    QosFlow,
    SiteTier,
    UserPlaneFunction,
    offload,
)
from repro.cn.smartnic import LATENCY_FACTOR, THROUGHPUT_GAIN
from repro.geo import KLAGENFURT, VIENNA
from repro.sim import RngRegistry


@pytest.fixture
def upf():
    return UserPlaneFunction(name="upf-vie", location=VIENNA,
                             tier=SiteTier.REGIONAL_CORE, load=0.3)


# ---------------------------------------------------------------------------
# UserPlaneFunction
# ---------------------------------------------------------------------------

def test_upf_lookup_scales_with_rules(upf):
    small = upf.with_rules(100)
    big = upf.with_rules(100_000)
    assert big.lookup_s() > small.lookup_s()
    assert big.lookup_s(cached=True) == small.lookup_s(cached=True)


def test_upf_mean_latency_magnitude(upf):
    # host-path UPF: tens of microseconds per packet
    assert 5e-6 < upf.mean_latency_s() < 200e-6


def test_upf_load_increases_latency(upf):
    assert upf.with_load(0.9).mean_latency_s() > upf.mean_latency_s()


def test_upf_sampled_latency_reproducible(upf):
    s1 = upf.sample_latency_s(RngRegistry(1).stream("u"))
    s2 = upf.sample_latency_s(RngRegistry(1).stream("u"))
    assert s1 == s2
    assert s1 >= upf.service_time_s()


def test_upf_relocation_preserves_params(upf):
    edge = upf.at_site(KLAGENFURT, SiteTier.EDGE)
    assert edge.tier is SiteTier.EDGE
    assert edge.location == KLAGENFURT
    assert edge.pipeline_s == upf.pipeline_s
    assert edge.name != upf.name
    # original untouched (immutability)
    assert upf.tier is SiteTier.REGIONAL_CORE


def test_upf_validation():
    with pytest.raises(ValueError):
        UserPlaneFunction(name="", location=VIENNA)
    with pytest.raises(ValueError):
        UserPlaneFunction(name="x", location=VIENNA, load=1.0)
    with pytest.raises(ValueError):
        UserPlaneFunction(name="x", location=VIENNA, throughput_bps=0.0)
    with pytest.raises(ValueError):
        UserPlaneFunction(name="x", location=VIENNA, rule_count=-1)


# ---------------------------------------------------------------------------
# SmartNIC offload (the 2x / 3.75x claims)
# ---------------------------------------------------------------------------

def test_offload_applies_published_factors(upf):
    nic = offload(upf)
    assert nic.smartnic
    assert nic.throughput_bps == pytest.approx(
        upf.throughput_bps * THROUGHPUT_GAIN)
    assert nic.pipeline_s == pytest.approx(upf.pipeline_s / LATENCY_FACTOR)
    assert nic.rule_scan_s == pytest.approx(upf.rule_scan_s / LATENCY_FACTOR)
    assert nic.load == pytest.approx(upf.load / THROUGHPUT_GAIN)


def test_offload_latency_ratio_close_to_published(upf):
    """Processing latency (lookup+pipeline, net of serialisation) drops
    by ~3.75x."""
    nic = offload(upf.with_load(0.0))
    host = upf.with_load(0.0)
    host_proc = host.lookup_s() + host.pipeline_s
    nic_proc = nic.lookup_s() + nic.pipeline_s
    assert host_proc / nic_proc == pytest.approx(LATENCY_FACTOR, rel=1e-6)


def test_double_offload_rejected(upf):
    nic = offload(upf)
    with pytest.raises(ValueError):
        offload(nic)


def test_offload_factor_validation(upf):
    with pytest.raises(ValueError):
        offload(upf, throughput_gain=0.5)


# ---------------------------------------------------------------------------
# 5QI table and flows
# ---------------------------------------------------------------------------

def test_five_qi_budgets():
    assert FIVE_QI[80].packet_delay_budget_s == pytest.approx(
        units.ms(10.0))   # low-latency eMBB (AR)
    assert FIVE_QI[85].packet_delay_budget_s == pytest.approx(
        units.ms(5.0))    # remote surgery
    assert FIVE_QI[9].packet_delay_budget_s > FIVE_QI[3].packet_delay_budget_s


def test_qos_class_validation():
    with pytest.raises(ValueError):
        QosClass(0, "GBR", 1, 0.1, 1e-2, "bad")
    with pytest.raises(ValueError):
        QosClass(1, "GBR", 1, -0.1, 1e-2, "bad")
    with pytest.raises(ValueError):
        QosClass(1, "GBR", 1, 0.1, 0.0, "bad")


def test_qos_flow_binding():
    flow = QosFlow("f1", "ue1", 80)
    assert flow.qos.priority == 68
    with pytest.raises(KeyError):
        QosFlow("f2", "ue1", 999)
    with pytest.raises(ValueError):
        QosFlow("", "ue1", 80)


# ---------------------------------------------------------------------------
# Context-aware rule engine (Sec. V-C, [32])
# ---------------------------------------------------------------------------

def test_cache_hit_is_faster_than_miss(upf):
    engine = ContextAwareRuleEngine(upf, capacity=4)
    flow = QosFlow("f1", "ue1", 80)
    miss = engine.lookup(flow)
    hit = engine.lookup(flow)
    assert hit < miss
    assert engine.hits == 1 and engine.misses == 1


def test_cache_respects_capacity(upf):
    engine = ContextAwareRuleEngine(upf, capacity=2)
    for i in range(5):
        engine.lookup(QosFlow(f"f{i}", "ue1", 9))
    assert engine.occupancy == 2


def test_high_priority_flow_not_evicted_by_bulk(upf):
    engine = ContextAwareRuleEngine(upf, capacity=2)
    surgery = QosFlow("surgery", "ue1", 85)    # priority 21
    engine.lookup(surgery)
    # A stream of bulk flows (priority 90) must not evict it...
    for i in range(10):
        engine.lookup(QosFlow(f"bulk{i}", "ue2", 9))
    assert engine.is_cached("surgery")
    # ...but another delay-critical flow may evict a bulk entry.
    engine.lookup(QosFlow("v2x", "ue3", 83))
    assert engine.is_cached("v2x")


def test_update_rule_latency(upf):
    engine = ContextAwareRuleEngine(upf, capacity=4)
    flow = QosFlow("f1", "ue1", 80)
    cold = engine.update_rule(flow)      # not cached: table write
    engine.lookup(flow)
    warm = engine.update_rule(flow)      # cached: in-place
    assert warm < cold


def test_hit_rate_reporting(upf):
    engine = ContextAwareRuleEngine(upf, capacity=4)
    assert engine.hit_rate == 0.0
    flow = QosFlow("f1", "ue1", 80)
    engine.lookup(flow)
    engine.lookup(flow)
    engine.lookup(flow)
    assert engine.hit_rate == pytest.approx(2.0 / 3.0)


def test_engine_validation(upf):
    with pytest.raises(ValueError):
        ContextAwareRuleEngine(upf, capacity=0)
