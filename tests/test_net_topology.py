"""Tests for nodes, links and the topology graph."""

import pytest

from repro import units
from repro.geo import GeoPoint, KLAGENFURT, VIENNA
from repro.net import Link, LinkKind, Node, NodeKind, Topology
from repro.sim import RngRegistry


def make_node(name, lat=46.6, lon=14.3, kind=NodeKind.ROUTER, asn=1):
    return Node(name=name, kind=kind, location=GeoPoint(lat, lon), asn=asn)


# ---------------------------------------------------------------------------
# Node
# ---------------------------------------------------------------------------

def test_node_defaults():
    n = make_node("r1")
    assert n.forwarding_delay_s == pytest.approx(50e-6)
    assert n.display_name == "r1"


def test_node_kind_specific_default_delay():
    upf = make_node("upf1", kind=NodeKind.UPF)
    router = make_node("r1")
    assert upf.forwarding_delay_s > router.forwarding_delay_s


def test_node_requires_name():
    with pytest.raises(ValueError):
        Node(name="", kind=NodeKind.ROUTER, location=KLAGENFURT)


def test_node_hop_label_variants():
    from repro.net import IPv4Address
    bare = make_node("r1")
    assert bare.hop_label == "r1"
    addr = IPv4Address.parse("195.140.139.133")
    anon = Node(name="x", kind=NodeKind.ROUTER, location=KLAGENFURT,
                address=addr, display_name=str(addr))
    assert anon.hop_label == "195.140.139.133"
    named = Node(name="y", kind=NodeKind.ROUTER, location=KLAGENFURT,
                 address=IPv4Address.parse("37.19.223.61"),
                 display_name="unn-37-19-223-61.datapacket.com")
    assert named.hop_label == "unn-37-19-223-61.datapacket.com [37.19.223.61]"


def test_node_equality_by_name():
    assert make_node("a") == make_node("a", lat=40.0)
    assert make_node("a") != make_node("b")


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------

def test_link_default_length_from_geography():
    a = Node("kla", NodeKind.ROUTER, KLAGENFURT, asn=1)
    b = Node("vie", NodeKind.ROUTER, VIENNA, asn=1)
    link = Link(a, b)
    gc = KLAGENFURT.distance_to(VIENNA)
    assert link.length_m == pytest.approx(gc * 1.05)


def test_link_propagation_delay_klagenfurt_vienna():
    a = Node("kla", NodeKind.ROUTER, KLAGENFURT, asn=1)
    b = Node("vie", NodeKind.ROUTER, VIENNA, asn=1)
    # ~246 km of fibre -> ~1.23 ms one way
    assert Link(a, b).propagation_delay() == pytest.approx(1.23e-3, rel=0.05)


def test_link_rejects_self_loop():
    a = make_node("a")
    with pytest.raises(ValueError):
        Link(a, a)


def test_link_validates_rate_and_utilisation():
    a, b = make_node("a"), make_node("b", lat=46.7)
    with pytest.raises(ValueError):
        Link(a, b, rate_bps=0.0)
    link = Link(a, b)
    with pytest.raises(ValueError):
        link.utilisation = 1.0


def test_link_transmission_delay():
    a, b = make_node("a"), make_node("b", lat=46.7)
    link = Link(a, b, rate_bps=units.gbps(1.0))
    assert link.transmission_delay(units.bytes_(1500)) == pytest.approx(12e-6)


def test_link_queueing_grows_with_load():
    a, b = make_node("a"), make_node("b", lat=46.7)
    link = Link(a, b, rate_bps=units.mbps(100.0))
    quiet = link.mean_queueing_delay(units.bytes_(1500))
    link.utilisation = 0.8
    busy = link.mean_queueing_delay(units.bytes_(1500))
    assert quiet == 0.0
    assert busy > 0.0


def test_link_one_way_deterministic_vs_sampled():
    a, b = make_node("a"), make_node("b", lat=46.7)
    link = Link(a, b, utilisation=0.5, rate_bps=units.mbps(10.0))
    mean = link.one_way(units.bytes_(1500))
    assert mean.queueing == pytest.approx(
        link.mean_queueing_delay(units.bytes_(1500)))
    rng = RngRegistry(3).stream("link")
    sampled = [link.one_way(units.bytes_(1500), rng).queueing
               for _ in range(100)]
    assert min(sampled) == 0.0       # some packets find an empty queue
    assert max(sampled) > mean.queueing


def test_link_other_endpoint():
    a, b, c = make_node("a"), make_node("b", lat=46.7), make_node("c", lat=47.0)
    link = Link(a, b)
    assert link.other(a) == b
    assert link.other(b) == a
    with pytest.raises(ValueError):
        link.other(c)


def test_virtual_link_negligible_propagation():
    a, b = make_node("a"), make_node("b", lat=46.7)
    link = Link(a, b, kind=LinkKind.VIRTUAL, length_m=50.0)
    assert link.propagation_delay() < 1e-6


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

@pytest.fixture
def triangle():
    topo = Topology("tri")
    a = topo.add_node(make_node("a", 46.6, 14.3))
    b = topo.add_node(make_node("b", 46.7, 14.3))
    c = topo.add_node(make_node("c", 46.7, 14.4))
    topo.connect(a, b)
    topo.connect(b, c)
    topo.connect(a, c, length_m=500e3)  # long way round
    return topo


def test_duplicate_node_rejected(triangle):
    with pytest.raises(ValueError):
        triangle.add_node(make_node("a"))


def test_parallel_link_rejected(triangle):
    with pytest.raises(ValueError):
        triangle.connect("a", "b")


def test_link_requires_known_endpoints():
    topo = Topology()
    a = topo.add_node(make_node("a"))
    ghost = make_node("ghost")
    with pytest.raises(KeyError):
        topo.add_link(Link(a, ghost))


def test_unknown_lookups_raise(triangle):
    with pytest.raises(KeyError):
        triangle.node("zz")
    with pytest.raises(KeyError):
        triangle.link("a", "zz")
    with pytest.raises(KeyError):
        triangle.degree("zz")


def test_counts_and_degree(triangle):
    assert triangle.node_count == 3
    assert triangle.link_count == 3
    assert triangle.degree("a") == 2


def test_shortest_path_prefers_low_latency(triangle):
    # a->c direct is 500 km; a->b->c is ~2x11km => via b wins
    assert triangle.shortest_path("a", "c") == ["a", "b", "c"]


def test_shortest_path_within_asn():
    topo = Topology()
    a = topo.add_node(make_node("a", asn=1))
    b = topo.add_node(make_node("b", 46.7, asn=2))
    c = topo.add_node(make_node("c", 46.8, asn=1))
    topo.connect(a, b)
    topo.connect(b, c)
    import networkx as nx
    with pytest.raises(nx.NetworkXNoPath):
        topo.shortest_path("a", "c", within_asn=1)


def test_path_latency_includes_intermediate_processing(triangle):
    path = ["a", "b", "c"]
    breakdown = triangle.path_latency(path)
    assert breakdown.processing == pytest.approx(
        triangle.node("b").forwarding_delay_s)
    with_endpoints = triangle.path_latency(path, include_endpoints=True)
    assert with_endpoints.processing > breakdown.processing


def test_path_latency_rejects_trivial_path(triangle):
    with pytest.raises(ValueError):
        triangle.path_latency(["a"])


def test_round_trip_roughly_double_one_way(triangle):
    path = ["a", "b", "c"]
    one = triangle.path_latency(path)
    rtt = triangle.round_trip(path)
    assert rtt.total == pytest.approx(2 * one.total, rel=1e-9)


def test_geographic_path_length(triangle):
    path = ["a", "b", "c"]
    expected = (triangle.link("a", "b").length_m
                + triangle.link("b", "c").length_m)
    assert triangle.geographic_path_length(path) == pytest.approx(expected)
    assert triangle.geographic_path_length(["a"]) == 0.0


def test_remove_link(triangle):
    triangle.remove_link("a", "c")
    assert not triangle.has_link("a", "c")
    with pytest.raises(KeyError):
        triangle.remove_link("a", "c")


def test_node_filters(triangle):
    routers = list(triangle.nodes(kind=NodeKind.ROUTER))
    assert len(routers) == 3
    as1 = list(triangle.nodes(asn=1))
    assert len(as1) == 3


def test_subgraph_nodes(triangle):
    sub = triangle.subgraph_nodes(["a", "b"])
    assert sub.node_count == 2
    assert sub.link_count == 1


def test_refresh_weights_changes_shortest_path():
    topo = Topology()
    a = topo.add_node(make_node("a", 46.6, 14.3))
    b = topo.add_node(make_node("b", 46.7, 14.3))
    c = topo.add_node(make_node("c", 46.7, 14.4))
    topo.connect(a, b, rate_bps=units.gbps(1.0))
    topo.connect(b, c, rate_bps=units.gbps(1.0))
    topo.connect(a, c, length_m=60e3)
    assert topo.shortest_path("a", "c") == ["a", "b", "c"]
    # Saturate the a-b link: queueing now dominates, direct path wins.
    topo.link("a", "b").utilisation = 0.94
    topo.refresh_weights()
    assert topo.shortest_path("a", "c") == ["a", "c"]
