"""Integration tests for the Klagenfurt scenario and Section IV artifacts.

These are the reproduction's acceptance tests: they assert the *shape*
of the paper's findings (who wins, by what factor, where extremes sit)
at the default seed, with tolerances documented against the paper's
published values.
"""

import numpy as np
import pytest

from repro import units
from repro.core import GapAnalysis, InfrastructureEvaluation, KlagenfurtScenario
from repro.geo.grid import CellId


@pytest.fixture(scope="module")
def scenario():
    return KlagenfurtScenario(seed=42)


@pytest.fixture(scope="module")
def evaluation():
    return InfrastructureEvaluation(seed=42).run()


# ---------------------------------------------------------------------------
# Scenario structure (Fig. 1)
# ---------------------------------------------------------------------------

def test_grid_is_6x7_42_cells(scenario):
    assert scenario.grid.cols == 6
    assert scenario.grid.rows == 7
    assert scenario.grid.cell_count == 42


def test_exactly_33_cells_traversed(scenario):
    """Paper: 'we traversed 33 cells (marked from A - F and 1 - 7)'."""
    assert len(scenario.traversed_cells) == 33
    assert len(scenario.masked_cells) == 9


def test_masked_cells_are_border_low_density(scenario):
    """Masked cells sit in border regions below 1000 inhabitants/km2."""
    for cell in scenario.masked_cells:
        assert scenario.grid.is_border(cell)
        assert scenario.population.cell_density(
            scenario.grid, cell) < 1000.0


def test_university_probe_in_e3(scenario):
    probe = scenario.topology.node("probe-uni")
    assert scenario.grid.locate(probe.location) == \
        CellId.from_label("E3")


def test_c2_to_e3_under_5km(scenario):
    """Paper: mobile node in C2, probe in E3, 'separated by less than
    5 km'."""
    c2 = scenario.grid.cell_center(CellId.from_label("C2"))
    e3 = scenario.grid.cell_center(CellId.from_label("E3"))
    assert c2.distance_to(e3) < 5_000.0


def test_anchor_cells_are_traversed(scenario):
    for label in ("C1", "C2", "C3", "B3", "E5"):
        assert CellId.from_label(label) in scenario.traversed_cells


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def test_table1_has_exactly_10_hops(scenario):
    assert scenario.reference_trace().hop_count == 10


def test_table1_hop_names_match_paper(scenario):
    trace = scenario.reference_trace()
    labels = [h.label for h in trace.hops]
    assert labels[0] == "10.12.128.1"
    assert labels[1] == "unn-37-19-223-61.datapacket.com [37.19.223.61]"
    assert labels[2] == "vl204.vie-itx1-core-2.cdn77.com [185.156.45.138]"
    assert labels[3] == "zetservers.peering.cz [185.0.20.31]"
    assert labels[4] == "vie-dr2-cr1.zet.net [103.246.249.33]"
    assert labels[5] == "amanet-cust.zet.net [185.104.63.33]"
    assert labels[6] == ("ae2-97.mx204-1.ix.vie.at.as39912.net "
                         "[185.211.219.155]")
    assert labels[7] == "003-228-016-195.ascus.at [195.16.228.3]"
    assert labels[8] == "180-246-016-195.ascus.at [195.16.246.180]"
    assert labels[9] == "195.140.139.133"


def test_table1_rtt_near_65ms(scenario):
    """Paper: 'an overall RTL of 65 ms caused by 10 network hops'."""
    total = scenario.reference_trace().total_rtt_s
    assert units.ms(55.0) < total < units.ms(75.0)


def test_table1_private_first_hop(scenario):
    trace = scenario.reference_trace()
    first = scenario.topology.node(trace.hops[0].node_name)
    assert first.address.is_private()


# ---------------------------------------------------------------------------
# Fig. 4
# ---------------------------------------------------------------------------

def test_fig4_detour_is_2544_km(scenario):
    """Paper: 'This route covers a total distance of 2544 km.'"""
    assert scenario.detour_route_km() == pytest.approx(2544.0, rel=0.02)


def test_fig4_route_leaves_the_country(scenario):
    trace = scenario.reference_trace()
    countries = set()
    for hop in trace.hops:
        node = scenario.topology.node(hop.node_name)
        if node.location.lat > 49.0:
            countries.add("CZ")
        elif node.location.lon > 20.0:
            countries.add("RO")
        else:
            countries.add("AT")
    assert countries == {"AT", "CZ", "RO"}


# ---------------------------------------------------------------------------
# Fig. 2 / Fig. 3 (the drive-test campaign)
# ---------------------------------------------------------------------------

def test_fig2_mean_range_matches_paper(evaluation):
    """Paper: 61 ms at C1 up to 110 ms at C3."""
    stats = evaluation.statistics
    low = stats.min_mean_cell()
    high = stats.max_mean_cell()
    assert low.cell.label == "C1"
    assert high.cell.label == "C3"
    assert low.mean_s == pytest.approx(units.ms(61.0), rel=0.05)
    assert high.mean_s == pytest.approx(units.ms(110.0), rel=0.05)


def test_fig3_std_extremes_match_paper(evaluation):
    """Paper: sigma from 1.8 ms (B3) to 46.4 ms (E5)."""
    stats = evaluation.statistics
    low = stats.min_std_cell()
    high = stats.max_std_cell()
    assert low.cell.label == "B3"
    assert high.cell.label == "E5"
    assert low.std_s < units.ms(4.0)
    assert high.std_s == pytest.approx(units.ms(46.4), rel=0.15)


def test_fig2_masked_cells_render_as_zero(evaluation):
    matrix = evaluation.statistics.mean_matrix_ms()
    for cell in evaluation.scenario.masked_cells:
        assert matrix[cell.row, cell.col] == 0.0


def test_fig2_all_traversed_cells_measured(evaluation):
    measured = {a.cell for a in evaluation.statistics.measured_cells()}
    assert measured == set(evaluation.scenario.traversed_cells)


def test_every_cell_exceeds_the_20ms_budget(evaluation):
    for agg in evaluation.statistics.measured_cells():
        assert agg.mean_s > units.ms(20.0)


# ---------------------------------------------------------------------------
# Gap analysis (Section IV-C)
# ---------------------------------------------------------------------------

def test_wired_baseline_in_7_to_12ms(evaluation):
    """Paper [3]: wired measurements of 7-12 ms to the cloud region."""
    mean = float(np.mean(evaluation.wired_rtts_s))
    assert units.ms(7.0) < mean < units.ms(12.0)


def test_mobile_wired_factor_of_seven(evaluation):
    """Paper: 'the mean RTL for mobile nodes surpasses that of wired
    nodes by a factor of seven'."""
    assert evaluation.gap.mobile_wired_factor == pytest.approx(7.0,
                                                               abs=0.8)


def test_exceedance_approximately_270_percent(evaluation):
    """Paper: 'exceeds the identified requirements ... by approximately
    270%'."""
    assert evaluation.gap.exceedance_percent == pytest.approx(270.0,
                                                              abs=20.0)


def test_gap_summary_mentions_key_numbers(evaluation):
    text = evaluation.gap.summary()
    assert "C1" in text and "C3" in text
    assert "%" in text


def test_figures_render(evaluation):
    fig2 = evaluation.figure2()
    assert "A" in fig2 and "0.0" in fig2
    fig3 = evaluation.figure3()
    assert "Standard Deviation" in fig3
    table = evaluation.table1()
    assert "zetservers.peering.cz" in table
    assert evaluation.figure4_km() == pytest.approx(2544.0, rel=0.02)


def test_campaign_is_deterministic():
    """Same seed -> identical dataset."""
    a = KlagenfurtScenario(seed=7).run_campaign(2.0)
    b = KlagenfurtScenario(seed=7).run_campaign(2.0)
    assert len(a) == len(b)
    assert np.array_equal(a.rtts, b.rtts)


def test_different_seed_changes_samples_not_shape():
    a = KlagenfurtScenario(seed=7).run_campaign(2.0)
    b = KlagenfurtScenario(seed=8).run_campaign(2.0)
    assert not np.array_equal(a.rtts[:min(len(a), len(b))],
                              b.rtts[:min(len(a), len(b))])


def test_gap_analysis_validation(evaluation):
    with pytest.raises(ValueError):
        GapAnalysis(requirement_s=0.0)
    with pytest.raises(ValueError):
        GapAnalysis().report(evaluation.statistics, np.array([]))


def test_evaluation_validation():
    with pytest.raises(ValueError):
        InfrastructureEvaluation(mean_positions_per_cell=0.0)
