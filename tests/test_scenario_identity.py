"""The build/sampling field partition and the build-key contract.

The two-phase split is only sound if the partition in
``repro.scenarios.identity`` is *complete*: every spec field is either
build-layer (changing it changes the ``build_key``) or sampling-layer
(changing it must NOT change the ``build_key``, and evaluating the
edited spec against the original compiled scenario must stay
bit-identical — ``tests/test_compiled_scenario.py`` covers that half).
These tests pin the partition, its exhaustiveness over the dataclass
fields, and the key's sensitivity in both directions.
"""

import dataclasses

from repro.fleet.sweep import run_key
from repro.scenarios import build_key, build_payload, klagenfurt
from repro.scenarios.identity import (
    SAMPLING_CAMPAIGN_FIELDS,
    SAMPLING_PEER_FIELDS,
    SAMPLING_SCENARIO_FIELDS,
)
from repro.scenarios.spec import CampaignSpec, PeerSpec, ScenarioSpec

SEED, DENSITY = 42, 2.0


def _field_names(cls):
    return {f.name for f in dataclasses.fields(cls)}


# ---------------------------------------------------------------------------
# Partition exhaustiveness: every field is explicitly classified
# ---------------------------------------------------------------------------

def test_every_campaign_field_is_classified():
    """A new CampaignSpec field must be placed in exactly one layer.

    Build-layer membership is implicit (subtractive payload), so this
    enumerates today's build-layer fields explicitly: extending the
    dataclass forces whoever does it to decide — and to prove the
    sampling claim with an equivalence test before moving a field out
    of the build layer.
    """
    build_fields = {
        "default_gateway", "gateways", "peers", "default_targets",
        "cell_targets", "gateway_by_cell", "extra_load_range",
        "route_weighting", "min_samples",
    }
    assert build_fields | SAMPLING_CAMPAIGN_FIELDS \
        == _field_names(CampaignSpec)
    assert not build_fields & SAMPLING_CAMPAIGN_FIELDS


def test_every_peer_field_is_classified():
    build_fields = {"name", "gateway"}
    assert build_fields | SAMPLING_PEER_FIELDS == _field_names(PeerSpec)
    assert not build_fields & SAMPLING_PEER_FIELDS


def test_every_scenario_field_is_classified():
    build_fields = {
        "name", "grid", "population", "radio", "campaign", "systems",
        "transits", "peerings", "nodes", "links", "probes",
        "reference_src", "reference_dst", "wired_src", "wired_dst",
        "detour_loop_end", "detour_circuity",
    }
    assert build_fields | SAMPLING_SCENARIO_FIELDS \
        == _field_names(ScenarioSpec)
    assert not build_fields & SAMPLING_SCENARIO_FIELDS


def test_unknown_fields_default_to_the_build_layer():
    """The payload is subtractive: anything to_dict emits that is not
    explicitly sampling-layer lands in the build payload (the safe
    direction — an unclassified field forces rebuilds)."""
    payload = build_payload(klagenfurt())
    assert "description" not in payload
    campaign = payload["campaign"]
    for name in SAMPLING_CAMPAIGN_FIELDS:
        assert name not in campaign
    for peer in campaign["peers"]:
        assert set(peer) & SAMPLING_PEER_FIELDS == set()
        assert "name" in peer and "gateway" in peer
    # Build-layer campaign fields survive the subtraction.
    assert "gateways" in campaign and "extra_load_range" in campaign


# ---------------------------------------------------------------------------
# Key sensitivity
# ---------------------------------------------------------------------------

def test_build_key_is_stable_and_distinct_from_run_key():
    spec = klagenfurt()
    key = build_key(spec, SEED, DENSITY)
    assert len(key) == 64 and int(key, 16) >= 0
    assert key == build_key(klagenfurt(), SEED, DENSITY)
    assert key != run_key(spec, SEED, DENSITY)


def test_seed_and_density_feed_the_build_key():
    # Both shape the build phase: the seed roots every named stream
    # (extra-load draws, shadowing, the route walk), the density sizes
    # the route.
    spec = klagenfurt()
    key = build_key(spec, SEED, DENSITY)
    assert build_key(spec, SEED + 1, DENSITY) != key
    assert build_key(spec, SEED, DENSITY + 1.0) != key


def test_sampling_layer_edits_keep_the_build_key():
    spec = klagenfurt()
    key = build_key(spec, SEED, DENSITY)
    for override in ({"description": "same world, new words"},
                     {"campaign.handover_interruption_s": 0.2},
                     {"campaign.max_cell_load": 0.5},
                     {"campaign.peer_site_index": 3},
                     {"campaign.extra_load_anchors.0.1": 0.77},
                     {"campaign.handover_prob.0.1": 0.5},
                     {"campaign.peers.0.air_load": 0.11},
                     {"campaign.peers.0.sinr_db": 3.0}):
        edited = spec.with_overrides(override)
        assert build_key(edited, SEED, DENSITY) == key, override
        # ... while the all-inclusive run identity always moves.
        assert run_key(edited, SEED, DENSITY) \
            != run_key(spec, SEED, DENSITY), override


def test_build_layer_edits_change_the_build_key():
    spec = klagenfurt()
    key = build_key(spec, SEED, DENSITY)
    for override in ({"campaign.default_targets.0": "vie-ix"},
                     {"campaign.peers.0.gateway": "vie-gw"},
                     {"radio.sites.0.load": 0.9},
                     {"campaign.extra_load_range.1": 0.5},
                     {"detour_circuity": 1.2}):
        edited = spec.with_overrides(override)
        assert build_key(edited, SEED, DENSITY) != key, override
