"""Tests for the shared retry policy: backoff math, deterministic
jitter, error classification, budgets, and Retry-After overrides.
Schedules must be pure functions of ``(policy, key, attempt)`` — no
RNG, no wall clock — so every assertion here is exact."""

import pytest

from repro.service.retry import (
    RetryExhausted,
    RetryPolicy,
    call_with_retry,
    deterministic_jitter,
)


# ---------------------------------------------------------------------------
# Jitter
# ---------------------------------------------------------------------------

def test_jitter_is_a_stable_fraction():
    values = [deterministic_jitter("worker-1", attempt)
              for attempt in range(32)]
    assert all(0.0 <= value < 1.0 for value in values)
    # Replayable: the same (key, attempt) always gives the same value.
    assert values == [deterministic_jitter("worker-1", attempt)
                      for attempt in range(32)]


def test_jitter_spreads_different_keys():
    # Different workers must not back off in lockstep after a restart.
    spread = {deterministic_jitter(f"worker-{i}", 0)
              for i in range(16)}
    assert len(spread) == 16


# ---------------------------------------------------------------------------
# Policy math
# ---------------------------------------------------------------------------

def test_policy_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                         max_delay_s=5.0, jitter=0.0)
    delays = [policy.delay_s(attempt) for attempt in range(5)]
    assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_policy_jitter_stays_within_the_fraction():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
    for attempt in range(16):
        delay = policy.delay_s(attempt, key="k")
        assert 0.75 <= delay <= 1.25


def test_retry_after_hint_only_raises_the_delay():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.0)
    # A server asking for more patience wins ...
    assert policy.delay_s(0, retry_after_s=7.5) == 7.5
    # ... but a hint below the computed backoff changes nothing.
    assert policy.delay_s(0, retry_after_s=0.1) == 1.0


def test_policy_none_tries_exactly_once():
    assert RetryPolicy.none().max_attempts == 1


def test_policy_validates_its_fields():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="non-negative"):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError, match="multiplier"):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# call_with_retry
# ---------------------------------------------------------------------------

class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=ConnectionError("down"),
                 value="ok"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


def _retry_all(exc):
    return 0.0


def test_retries_until_success_and_sleeps_the_schedule():
    slept = []
    fn = Flaky(failures=2)
    policy = RetryPolicy(max_attempts=5, base_delay_s=1.0,
                         multiplier=2.0, jitter=0.0)
    result = call_with_retry(fn, policy=policy, classify=_retry_all,
                             sleep=slept.append)
    assert result == "ok" and fn.calls == 3
    assert slept == [1.0, 2.0]


def test_exhaustion_raises_with_the_last_error_attached():
    fn = Flaky(failures=99)
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
    with pytest.raises(RetryExhausted) as exc_info:
        call_with_retry(fn, policy=policy, classify=_retry_all,
                        key="POST /lease", sleep=lambda s: None)
    assert fn.calls == 3
    assert exc_info.value.attempts == 3
    assert exc_info.value.last is fn.exc
    assert "POST /lease" in str(exc_info.value)


def test_non_retryable_errors_propagate_unwrapped():
    fn = Flaky(failures=99, exc=KeyError("fatal"))
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
    with pytest.raises(KeyError):
        call_with_retry(fn, policy=policy,
                        classify=lambda exc: None,
                        sleep=lambda s: None)
    assert fn.calls == 1   # gave up immediately


def test_classifier_retry_after_overrides_the_sleep():
    slept = []
    fn = Flaky(failures=1)
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
    call_with_retry(fn, policy=policy, classify=lambda exc: 4.0,
                    sleep=slept.append)
    assert slept == [4.0]


def test_budget_ends_the_loop_early():
    now = [0.0]

    def clock():
        return now[0]

    def sleep(delay):
        now[0] += delay

    fn = Flaky(failures=99)
    policy = RetryPolicy(max_attempts=50, base_delay_s=1.0,
                         multiplier=1.0, jitter=0.0, budget_s=2.5)
    with pytest.raises(RetryExhausted):
        call_with_retry(fn, policy=policy, classify=_retry_all,
                        sleep=sleep, clock=clock)
    # 1 s + 1 s spent; a third sleep would cross the 2.5 s budget.
    assert fn.calls == 3


def test_on_retry_observes_each_backoff():
    seen = []
    fn = Flaky(failures=2)
    policy = RetryPolicy(max_attempts=5, base_delay_s=1.0,
                         multiplier=2.0, jitter=0.0)
    call_with_retry(fn, policy=policy, classify=_retry_all,
                    sleep=lambda s: None,
                    on_retry=lambda a, d, e: seen.append((a, d)))
    assert seen == [(0, 1.0), (1, 2.0)]


def test_schedules_replay_bit_identically():
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.2)

    def schedule():
        slept = []
        fn = Flaky(failures=99)
        with pytest.raises(RetryExhausted):
            call_with_retry(fn, policy=policy, classify=_retry_all,
                            key="GET /healthz", sleep=slept.append)
        return slept

    assert schedule() == schedule()
