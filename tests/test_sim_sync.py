"""Tests for repro.sim.sync — guarded attributes + watched locks."""

import threading

import pytest

from repro.sim.sync import (
    GuardedAttribute,
    GuardViolation,
    LockOrderError,
    SyncContractError,
    WatchedCondition,
    WatchedLock,
    assert_mode,
    declared_guards,
    guarded_by,
    reset_watchdog,
    set_assert_mode,
)


@pytest.fixture()
def assert_on():
    """Run the test in assert mode with a clean order graph."""
    previous = set_assert_mode(True)
    reset_watchdog()
    try:
        yield
    finally:
        set_assert_mode(previous)
        reset_watchdog()


class Box:
    value: int = guarded_by("_lock")
    stats: int = guarded_by("_lock", writes_only=True)

    def __init__(self):
        self._lock = WatchedLock("box")
        self.value = 0
        self.stats = 0


# ---------------------------------------------------------------------------
# guarded_by / GuardedAttribute
# ---------------------------------------------------------------------------

def test_first_assignment_in_init_is_exempt(assert_on):
    box = Box()  # __init__ assigns without the lock: allowed
    with box._lock:
        assert box.value == 0


def test_read_and_rebind_require_lock(assert_on):
    box = Box()
    with pytest.raises(GuardViolation):
        _ = box.value
    with pytest.raises(GuardViolation):
        box.value = 1
    with box._lock:
        box.value = 2
        assert box.value == 2


def test_writes_only_allows_lockfree_reads(assert_on):
    box = Box()
    assert box.stats == 0  # racy read is the declared contract
    with pytest.raises(GuardViolation):
        box.stats = 1  # ...but rebinding still needs the lock
    with box._lock:
        box.stats = 1
    assert box.stats == 1


def test_assert_mode_off_is_transparent():
    previous = set_assert_mode(False)
    try:
        box = Box()
        box.value = 5  # no lock, no complaint
        assert box.value == 5
    finally:
        set_assert_mode(previous)


def test_missing_attribute_raises_attributeerror(assert_on):
    class Bare:
        value: int = guarded_by("_lock")

        def __init__(self):
            self._lock = WatchedLock("bare")

    bare = Bare()
    with bare._lock:
        with pytest.raises(AttributeError):
            _ = bare.value
        bare.value = 3
        del bare.value
        with pytest.raises(AttributeError):
            del bare.value


def test_class_access_returns_descriptor():
    assert isinstance(Box.value, GuardedAttribute)
    assert Box.value.lock_attr == "_lock"
    assert Box.stats.writes_only is True


def test_guard_violation_cross_thread(assert_on):
    box = Box()
    box._lock.acquire()
    errors = []

    def reader():
        try:
            _ = box.value
        except GuardViolation as exc:
            errors.append(exc)

    worker = threading.Thread(target=reader, daemon=True)
    worker.start()
    worker.join()
    box._lock.release()
    assert len(errors) == 1


def test_stdlib_rlock_backs_guard_via_is_owned(assert_on):
    class StdBox:
        value: int = guarded_by("_lock")

        def __init__(self):
            self._lock = threading.RLock()
            self.value = 0

    box = StdBox()
    with pytest.raises(GuardViolation):
        box.value = 1
    with box._lock:
        box.value = 1
        assert box.value == 1


def test_plain_lock_guard_is_skipped(assert_on):
    # Ownership of a non-reentrant Lock is unknowable; the runtime
    # check declines rather than guessing.
    class LockBox:
        value: int = guarded_by("_lock")

        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0

    box = LockBox()
    box.value = 1  # no probe available -> no violation
    assert box.value == 1


def test_declared_guards_walks_mro():
    class Base:
        a: int = guarded_by("_lock")

    class Child(Base):
        b: int = guarded_by("_other")

    assert declared_guards(Child) == {"a": "_lock", "b": "_other"}
    assert declared_guards(Box) == {"value": "_lock", "stats": "_lock"}


def test_exception_hierarchy():
    assert issubclass(GuardViolation, SyncContractError)
    assert issubclass(LockOrderError, SyncContractError)
    assert issubclass(SyncContractError, RuntimeError)


def test_set_assert_mode_returns_previous():
    previous = set_assert_mode(True)
    try:
        assert assert_mode() is True
        assert set_assert_mode(False) is True
        assert assert_mode() is False
    finally:
        set_assert_mode(previous)


# ---------------------------------------------------------------------------
# WatchedLock
# ---------------------------------------------------------------------------

def test_watched_lock_reentrant_ownership(assert_on):
    lock = WatchedLock("re")
    assert not lock.held_by_current_thread()
    with lock:
        assert lock.held_by_current_thread()
        with lock:  # reentrant
            assert lock.held_by_current_thread()
        assert lock.held_by_current_thread()
    assert not lock.held_by_current_thread()


def test_watched_lock_release_by_non_owner_raises(assert_on):
    lock = WatchedLock("owned")
    lock.acquire()
    errors = []

    def bad_release():
        try:
            lock.release()
        except RuntimeError as exc:
            errors.append(exc)

    worker = threading.Thread(target=bad_release, daemon=True)
    worker.start()
    worker.join()
    lock.release()
    assert len(errors) == 1


def test_lock_order_cycle_detected(assert_on):
    a, b = WatchedLock("order-a"), WatchedLock("order-b")
    with a:
        with b:  # records a -> b
            pass
    with b:
        with pytest.raises(LockOrderError):
            a.acquire()  # b -> a closes the cycle
        # the failed acquire must not leave 'a' held
        assert not a.held_by_current_thread()
    # consistent order stays fine afterwards
    with a:
        with b:
            pass


def test_lock_order_transitive_cycle(assert_on):
    a, b, c = (WatchedLock("tri-a"), WatchedLock("tri-b"),
               WatchedLock("tri-c"))
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(LockOrderError):
            a.acquire()


def test_reset_watchdog_forgets_edges(assert_on):
    a, b = WatchedLock("forget-a"), WatchedLock("forget-b")
    with a:
        with b:
            pass
    reset_watchdog()
    with b:
        with a:  # no recorded a -> b edge any more
            pass


def test_reentrant_acquire_skips_order_check(assert_on):
    lock = WatchedLock("self")
    with lock:
        with lock:  # must not record a self-edge or raise
            pass
    with lock:
        pass


# ---------------------------------------------------------------------------
# WatchedCondition
# ---------------------------------------------------------------------------

def test_condition_wait_restores_ownership(assert_on):
    cond = WatchedCondition("cv")
    ready = []

    def producer():
        with cond:
            ready.append(True)
            cond.notify_all()

    with cond:
        assert cond.held_by_current_thread()
        worker = threading.Thread(target=producer, daemon=True)
        worker.start()
        while not ready:
            cond.wait(timeout=5.0)
        # ownership restored after wait() reacquires
        assert cond.held_by_current_thread()
        worker.join()
    assert not cond.held_by_current_thread()


def test_condition_wait_without_lock_raises(assert_on):
    cond = WatchedCondition("unheld")
    with pytest.raises(RuntimeError):
        cond.wait(timeout=0.01)


def test_condition_guards_attribute(assert_on):
    class CondBox:
        value: int = guarded_by("_cond")

        def __init__(self):
            self._cond = WatchedCondition("cond-box")
            self.value = 0

    box = CondBox()
    with pytest.raises(GuardViolation):
        box.value = 1
    with box._cond:
        box.value = 1
        assert box.value == 1


def test_condition_participates_in_order_graph(assert_on):
    cond = WatchedCondition("graph-cv")
    lock = WatchedLock("graph-lk")
    with cond:
        with lock:
            pass
    with lock:
        with pytest.raises(LockOrderError):
            cond.acquire()
