"""Tests for queueing formulas and latency breakdowns."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net import (
    LatencyBreakdown,
    md1_wait,
    mg1_wait,
    mm1_residence,
    mm1_wait,
    sample_mm1_wait,
)
from repro.sim import RngRegistry

rho_st = st.floats(min_value=0.0, max_value=0.95)
service_st = st.floats(min_value=1e-9, max_value=1.0)


# ---------------------------------------------------------------------------
# Queueing formulas
# ---------------------------------------------------------------------------

def test_mm1_wait_known_value():
    # rho=0.5, E[S]=2ms -> W_q = 2ms
    assert mm1_wait(0.5, 2e-3) == pytest.approx(2e-3)


def test_md1_is_half_of_mm1():
    assert md1_wait(0.6, 1e-3) == pytest.approx(mm1_wait(0.6, 1e-3) / 2.0)


def test_mg1_interpolates_mm1_md1():
    rho, s = 0.7, 5e-4
    assert mg1_wait(rho, s, service_scv=1.0) == pytest.approx(
        mm1_wait(rho, s))
    assert mg1_wait(rho, s, service_scv=0.0) == pytest.approx(
        md1_wait(rho, s))


def test_mm1_residence_includes_service():
    assert mm1_residence(0.0, 1e-3) == pytest.approx(1e-3)
    assert mm1_residence(0.5, 1e-3) == pytest.approx(2e-3)


def test_unstable_utilisation_rejected():
    for func in (lambda: mm1_wait(1.0, 1e-3),
                 lambda: md1_wait(1.2, 1e-3),
                 lambda: mg1_wait(-0.1, 1e-3, 1.0),
                 lambda: mm1_residence(1.0, 1e-3)):
        with pytest.raises(ValueError):
            func()


def test_negative_service_time_rejected():
    with pytest.raises(ValueError):
        mm1_wait(0.5, -1e-3)
    with pytest.raises(ValueError):
        mg1_wait(0.5, 1e-3, -1.0)


@given(rho_st, service_st)
def test_mm1_wait_nonnegative_and_monotone_in_rho(rho, s):
    w = mm1_wait(rho, s)
    assert w >= 0.0
    assert mm1_wait(min(rho + 0.01, 0.96), s) >= w


def test_zero_load_means_zero_wait():
    assert mm1_wait(0.0, 1e-3) == 0.0
    assert md1_wait(0.0, 1e-3) == 0.0


def test_sample_mm1_wait_mean_converges():
    rng = RngRegistry(7).stream("q")
    rho, s = 0.6, 1e-3
    samples = sample_mm1_wait(rho, s, rng, size=200_000)
    assert np.mean(samples) == pytest.approx(mm1_wait(rho, s), rel=0.05)


def test_sample_mm1_wait_scalar_and_zero_load():
    rng = RngRegistry(7).stream("q2")
    assert sample_mm1_wait(0.0, 1e-3, rng) == 0.0
    value = sample_mm1_wait(0.5, 1e-3, rng)
    assert isinstance(value, float) and value >= 0.0


def test_sample_mm1_idle_fraction():
    rng = RngRegistry(11).stream("q3")
    rho = 0.3
    samples = sample_mm1_wait(rho, 1e-3, rng, size=100_000)
    # P(W = 0) = 1 - rho
    assert np.mean(samples == 0.0) == pytest.approx(1.0 - rho, abs=0.01)


# ---------------------------------------------------------------------------
# LatencyBreakdown
# ---------------------------------------------------------------------------

def test_breakdown_total_is_sum():
    b = LatencyBreakdown(propagation=1e-3, transmission=2e-3,
                         queueing=3e-3, processing=4e-3)
    assert b.total == pytest.approx(10e-3)


def test_breakdown_addition():
    a = LatencyBreakdown(propagation=1e-3)
    b = LatencyBreakdown(queueing=2e-3)
    c = a + b
    assert c.propagation == 1e-3
    assert c.queueing == 2e-3
    assert c.total == pytest.approx(3e-3)


def test_breakdown_scaling():
    b = LatencyBreakdown(propagation=1e-3, processing=1e-3)
    doubled = b.scaled(2.0)
    assert doubled.total == pytest.approx(4e-3)
    with pytest.raises(ValueError):
        b.scaled(-1.0)


def test_breakdown_share():
    b = LatencyBreakdown(propagation=3e-3, queueing=1e-3)
    assert b.share("propagation") == pytest.approx(0.75)
    assert LatencyBreakdown.zero().share("queueing") == 0.0
    with pytest.raises(KeyError):
        b.share("teleportation")


def test_breakdown_rejects_negative_components():
    with pytest.raises(ValueError):
        LatencyBreakdown(propagation=-1e-3)


def test_breakdown_as_dict_includes_total():
    d = LatencyBreakdown(processing=5e-3).as_dict()
    assert d["processing"] == 5e-3
    assert d["total"] == pytest.approx(5e-3)


@given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1),
       st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_breakdown_addition_commutes(p, t, q, r):
    a = LatencyBreakdown(p, t, q, r)
    b = LatencyBreakdown(r, q, t, p)
    assert (a + b).total == pytest.approx((b + a).total)
