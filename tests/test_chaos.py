"""Chaos suite: the fleet service under deterministic fault schedules.

Every scenario drives the real stack — HTTP server, retrying client,
worker loop, journaled broker — through a :class:`FaultSchedule` and
then asserts the one property the whole fault-tolerance layer exists
for: **the records are byte-identical to a serial run_sweep of the
same sweep**, and no acked run is ever evaluated twice.  Faults fire
by count, never by chance, so a failing scenario replays exactly.
"""

import threading
import time

import pytest

from repro.fleet import ResultCache, SweepAxis, SweepSpec, run_sweep
from repro.fleet.store import FleetStore
from repro.scenarios import klagenfurt
from repro.service import (
    FleetBroker,
    FleetJournal,
    ReproService,
    RetryPolicy,
    ServiceClient,
    run_worker,
)
from repro.service.contracts import ResultSubmission
from repro.testing import (
    FaultInjected,
    FaultSchedule,
    FaultSpec,
    SimulatedCrash,
    corrupt_cache_entry,
)

AXIS = "campaign.handover_interruption_s"


@pytest.fixture(scope="module")
def sweep():
    return SweepSpec(bases=(klagenfurt(),),
                     axes=(SweepAxis(AXIS, (30e-3, 60e-3)),),
                     seeds=(42,), density=2.0)


@pytest.fixture(scope="module")
def runs(sweep):
    return sweep.expand()


@pytest.fixture(scope="module")
def serial_records(sweep):
    """The byte-identity baseline every chaos scenario must match."""
    result = run_sweep(sweep, executor="serial")
    return {record.run_id: record.to_dict()
            for record in result.records}


RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.02,
                    max_delay_s=0.2, jitter=0.0)


def _worker(url, schedule=None, **kwargs):
    """A worker thread that treats an injected kill like a real one:
    the process just stops, leaving its lease to expire."""
    options = dict(poll_s=0.05, max_idle_s=2.0, retry=RETRY)
    options.update(kwargs)

    def target():
        try:
            run_worker(url, fault_hook=schedule, **options)
        except FaultInjected:
            pass
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


def _wait_complete(client, fleet_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if client.status(fleet_id).complete:
            return client.status(fleet_id)
        time.sleep(0.05)
    raise AssertionError(f"fleet {fleet_id} did not complete")


def _assert_identical(client, fleet_id, runs, serial_records):
    for run in runs:
        assert client.record(fleet_id, run.run_id) == \
            serial_records[run.run_id]


# ---------------------------------------------------------------------------
# Network faults: drops and duplicates around live HTTP workers
# ---------------------------------------------------------------------------

def test_dropped_requests_and_responses_stay_bit_identical(
        tmp_path, sweep, runs, serial_records):
    """Lease request lost, result response lost (the ambiguous case),
    result delivered twice — retries + idempotency absorb all three
    and the records never drift from serial."""
    schedule = FaultSchedule([
        FaultSpec(op="POST /lease", action="drop-request", times=1),
        FaultSpec(op="POST /results", action="drop-response", times=1),
        FaultSpec(op="POST /results", action="duplicate", times=1),
    ])
    service = ReproService(tmp_path / "root", port=0)
    service.start()
    try:
        client = ServiceClient(service.url)
        ack = client.submit_sweep(sweep.to_dict())
        worker = _worker(service.url, schedule, worker_id="chaos-net")
        status = _wait_complete(client, ack.fleet_id)
        worker.join(timeout=60.0)

        assert status.done == len(runs)
        # All three faults actually fired; the run was still counted
        # exactly once each.
        assert schedule.fired_actions("drop-request") == 1
        assert schedule.fired_actions("drop-response") == 1
        assert schedule.fired_actions("duplicate") == 1
        _assert_identical(client, ack.fleet_id, runs, serial_records)
    finally:
        service.stop()


def test_duplicated_submission_creates_exactly_one_fleet(
        tmp_path, runs):
    """The network delivering POST /fleets twice must not enqueue the
    sweep twice — the client-generated submission key dedups it."""
    schedule = FaultSchedule([
        FaultSpec(op="POST /fleets", action="duplicate", times=1),
    ])
    service = ReproService(tmp_path / "root", port=0)
    service.start()
    try:
        client = ServiceClient(service.url, retry=RETRY,
                               fault_hook=schedule)
        ack = client.submit_runs([run.to_dict() for run in runs])
        assert schedule.fired_actions("duplicate") == 1
        assert service.broker.fleet_ids() == [ack.fleet_id]
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Worker killed mid-run: lease expiry + re-evaluation
# ---------------------------------------------------------------------------

def test_worker_killed_posting_its_result_stays_bit_identical(
        tmp_path, sweep, runs, serial_records):
    """The doomed worker evaluates a run and dies posting it.  Its
    lease expires, another worker re-evaluates, and determinism makes
    the re-evaluated record indistinguishable from the lost one."""
    schedule = FaultSchedule([
        FaultSpec(op="POST /results", action="kill", times=1),
    ])
    service = ReproService(tmp_path / "root", port=0, lease_ttl_s=0.5)
    service.start()
    try:
        client = ServiceClient(service.url)
        ack = client.submit_sweep(sweep.to_dict())
        doomed = _worker(service.url, schedule, worker_id="doomed")
        doomed.join(timeout=60.0)
        assert schedule.fired_actions("kill") == 1
        healthy = _worker(service.url, worker_id="healthy",
                          max_idle_s=5.0)
        status = _wait_complete(client, ack.fleet_id)
        healthy.join(timeout=60.0)

        assert status.done == len(runs)
        assert status.workers == 1        # only the healthy one landed
        assert service.broker.requeues >= 1
        _assert_identical(client, ack.fleet_id, runs, serial_records)
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Server crash in the ack window: journal + store carry the state
# ---------------------------------------------------------------------------

def test_server_crash_between_journal_and_ack_never_reevaluates(
        tmp_path, runs, serial_records):
    """Crash in the exact window durability must cover: record and
    journal entry are on disk, the ack never left the server.  The
    restarted broker recovers the run as DONE and answers the retried
    submission with a duplicate ack — zero re-evaluation."""
    schedule = FaultSchedule([
        FaultSpec(op="broker.ack", action="crash", times=1),
    ])
    root = tmp_path / "fleets"
    journal_dir = tmp_path / "journal"
    broker = FleetBroker(root, journal=FleetJournal(journal_dir),
                         fault_hook=schedule)
    broker.submit_runs(runs)
    grant = broker.lease("w1")
    first = ResultSubmission(
        lease_id=grant.lease_id,
        record=serial_records[grant.run["run_id"]], wall_s=0.5)
    with pytest.raises(SimulatedCrash):
        broker.submit_result(first)

    # "Restart": a new broker on the same root replays the journal.
    revived = FleetBroker(root, journal=FleetJournal(journal_dir))
    stats = revived.recover()
    assert stats["fleets"] == 1
    assert stats["records"] == 1      # the crashed ack's record held
    assert stats["requeued"] == 0
    # The worker retrying its ambiguous submission is just a duplicate.
    late = revived.submit_result(first)
    assert not late.accepted and late.duplicate
    # The rest of the fleet drains normally.
    grant = revived.lease("w2")
    ack = revived.submit_result(ResultSubmission(
        lease_id=grant.lease_id,
        record=serial_records[grant.run["run_id"]], wall_s=0.5))
    assert ack.accepted
    fleet_id = revived.fleet_ids()[0]
    assert revived.status(fleet_id).complete
    for run in runs:
        assert revived.record(fleet_id, run.run_id).to_dict() == \
            serial_records[run.run_id]


# ---------------------------------------------------------------------------
# Full server restart mid-fleet over HTTP
# ---------------------------------------------------------------------------

def test_server_restart_midfleet_resumes_without_reevaluation(
        tmp_path, sweep, runs, serial_records):
    """Process half the fleet, kill the server, start a fresh one on
    the same state directory: the journal restores the fleet, the
    acked run is never re-evaluated, and the finished fleet is
    byte-identical to serial."""
    root = tmp_path / "root"
    service = ReproService(root, port=0)
    service.start()
    try:
        client = ServiceClient(service.url)
        ack = client.submit_sweep(sweep.to_dict())
        # One worker, one run, then it exits — half the fleet done.
        half = _worker(service.url, worker_id="half", max_runs=1)
        half.join(timeout=60.0)
        assert client.status(ack.fleet_id).done == 1
    finally:
        service.stop()   # the "crash": no drain, no finalize

    revived = ReproService(root, port=0)
    revived.start()
    try:
        # Recovery happened before the socket opened.
        assert revived.recovery["fleets"] == 1
        assert revived.recovery["records"] == 1
        assert revived.recovery["requeued"] == 0
        client = ServiceClient(revived.url)
        assert client.status(ack.fleet_id).done == 1
        # The finishing worker reports how many runs it evaluated —
        # exactly the one that was still pending.
        completed = []
        done = threading.Thread(
            target=lambda: completed.append(run_worker(
                revived.url, worker_id="finisher", poll_s=0.05,
                max_idle_s=2.0, retry=RETRY)),
            daemon=True)
        done.start()
        status = _wait_complete(client, ack.fleet_id)
        done.join(timeout=60.0)
        assert completed == [1]           # zero re-evaluations
        assert status.done == len(runs)
        _assert_identical(client, ack.fleet_id, runs, serial_records)
        # The recovered fleet directory is a normal, loadable store.
        loaded = FleetStore(
            revived.broker.fleet_dir(ack.fleet_id)).load()
        assert [r.to_dict() for r in loaded.records] == \
            [serial_records[run.run_id] for run in runs]
    finally:
        revived.stop()


# ---------------------------------------------------------------------------
# Cache corruption: detected, dropped, recomputed
# ---------------------------------------------------------------------------

def test_corrupt_cache_object_heals_and_stays_bit_identical(
        tmp_path, sweep, runs, serial_records):
    """Seeded on-disk rot in the shared cache must surface as a miss
    (recompute), never as bad data served to a fleet."""
    cache_dir = tmp_path / "cache"
    first = run_sweep(sweep, cache=cache_dir)
    assert [r.to_dict() for r in first.records] == \
        [serial_records[run.run_id] for run in runs]

    corrupt_cache_entry(cache_dir, runs[0].spec_key(), seed=9)

    again = run_sweep(sweep, cache=cache_dir)
    assert [r.to_dict() for r in again.records] == \
        [serial_records[run.run_id] for run in runs]
    # One entry healed (recomputed), the other was a clean hit.
    assert again.exec_stats["result_cache_corrupt"] == 1
    assert again.exec_stats["result_cache_hits"] == 1
    assert again.cached == (False, True)
    # The healed entry is back on disk and intact.
    cache = ResultCache(cache_dir)
    assert cache.get(runs[0].spec_key()) is not None
