"""Multi-seed robustness of the reproduction's *qualitative* findings.

The quantitative anchors (61/110/1.8/46.4) are calibrated at the default
seed; the paper's qualitative findings must survive any seed:

* every measured cell exceeds the 20 ms requirement;
* mobile RTL is many times the wired baseline;
* the latency field has strong inter-cell structure (max >> min);
* border cells stay masked;
* the Table I trace and Fig. 4 detour are seed-independent (they are
  topology, not sampling).
"""

import numpy as np
import pytest

from repro import units
from repro.core import GapAnalysis, KlagenfurtScenario

SEEDS = (7, 99, 2024)


@pytest.mark.parametrize("seed", SEEDS)
def test_qualitative_findings_hold(seed):
    scenario = KlagenfurtScenario(seed=seed)
    stats = scenario.statistics(scenario.run_campaign(3.0))
    gap = GapAnalysis().report(stats, scenario.wired_baseline())

    # Every measured cell exceeds the budget.
    for agg in stats.measured_cells():
        assert agg.mean_s > units.ms(20.0)
    # Mobile far above wired.
    assert gap.mobile_wired_factor > 4.0
    # Strong inter-cell structure.
    assert gap.max_cell_mean_s > 1.3 * gap.min_cell_mean_s
    # Variance field spans an order of magnitude.
    assert gap.max_std_s > 5.0 * gap.min_std_s
    # Exceedance in the paper's ballpark (loose band across seeds).
    assert 150.0 < gap.exceedance_percent < 450.0


@pytest.mark.parametrize("seed", SEEDS)
def test_topology_artifacts_are_seed_independent(seed):
    scenario = KlagenfurtScenario(seed=seed)
    trace = scenario.reference_trace()
    assert trace.hop_count == 10
    assert scenario.detour_route_km() == pytest.approx(2544.0, rel=0.02)
    assert len(scenario.traversed_cells) == 33


def test_masked_cells_identical_across_seeds():
    masks = [tuple(c.label for c in KlagenfurtScenario(seed=s).masked_cells)
             for s in SEEDS]
    assert len(set(masks)) == 1
