"""Tests for the deterministic fault-injection harness: spec
validation, count-based arming (after/times), op patterns, the action
verbs, thread safety of the schedule, and the seeded data-corruption
helpers.  Everything must be replayable — same schedule, same calls,
same faults."""

import threading

import pytest

from repro.testing import (
    ACTIONS,
    FaultInjected,
    FaultSchedule,
    FaultSpec,
    SimulatedCrash,
    WorkerKilled,
    corrupt_cache_entry,
    seeded_bytes,
)


# ---------------------------------------------------------------------------
# FaultSpec
# ---------------------------------------------------------------------------

def test_spec_rejects_unknown_actions():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultSpec(op="POST /lease", action="explode")


def test_spec_rejects_negative_counters():
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec(op="x", action="kill", after=-1)
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec(op="x", action="kill", times=-1)
    with pytest.raises(ValueError, match="delay_s"):
        FaultSpec(op="x", action="delay", delay_s=-0.5)


def test_every_documented_action_is_constructible():
    for action in ACTIONS:
        FaultSpec(op="x", action=action)


# ---------------------------------------------------------------------------
# Schedule matching
# ---------------------------------------------------------------------------

def test_schedule_fires_by_count_not_chance():
    schedule = FaultSchedule([
        FaultSpec(op="POST /lease", action="drop-request",
                  after=2, times=1),
    ])
    verbs = [schedule("POST /lease") for _ in range(5)]
    assert verbs == [None, None, "drop-request", None, None]
    assert schedule.fired == [("POST /lease", "drop-request")]


def test_times_zero_fires_forever():
    schedule = FaultSchedule([
        FaultSpec(op="GET *", action="drop-request", times=0),
    ])
    assert [schedule("GET /healthz") for _ in range(3)] == \
        ["drop-request"] * 3


def test_op_patterns_are_fnmatch():
    schedule = FaultSchedule([
        FaultSpec(op="broker.*", action="drop-request", times=0),
    ])
    assert schedule("broker.ack") == "drop-request"
    assert schedule("POST /lease") is None


def test_first_armed_rule_wins():
    schedule = FaultSchedule([
        FaultSpec(op="POST /results", action="drop-response", times=1),
        FaultSpec(op="POST *", action="duplicate", times=0),
    ])
    assert schedule("POST /results") == "drop-response"
    # Rule one is spent; rule two takes over.
    assert schedule("POST /results") == "duplicate"


def test_non_matching_calls_do_not_consume_counters():
    schedule = FaultSchedule([
        FaultSpec(op="POST /lease", action="kill", after=1),
    ])
    for _ in range(10):
        assert schedule("GET /healthz") is None
    assert schedule("POST /lease") is None       # after=1 skips this
    with pytest.raises(WorkerKilled):
        schedule("POST /lease")


def test_kill_and_crash_raise_fault_injected_subclasses():
    schedule = FaultSchedule([
        FaultSpec(op="lease", action="kill"),
        FaultSpec(op="ack", action="crash"),
    ])
    with pytest.raises(WorkerKilled):
        schedule("lease")
    with pytest.raises(SimulatedCrash):
        schedule("ack")
    assert issubclass(WorkerKilled, FaultInjected)
    assert issubclass(SimulatedCrash, FaultInjected)
    assert schedule.fired_actions("kill") == 1
    assert schedule.fired_actions("crash") == 1


def test_delay_sleeps_through_the_injected_sleep():
    slept = []
    schedule = FaultSchedule(
        [FaultSpec(op="POST /lease", action="delay", delay_s=1.5)],
        sleep=slept.append)
    assert schedule("POST /lease") is None
    assert slept == [1.5]


def test_parse_accepts_plain_dicts():
    schedule = FaultSchedule.parse([
        {"op": "POST /lease", "action": "kill", "after": 3},
        FaultSpec(op="POST /results", action="drop-response"),
    ], seed=7)
    assert schedule.seed == 7
    assert len(schedule.specs) == 2
    assert all(isinstance(spec, FaultSpec)
               for spec in schedule.specs)


def test_schedule_is_thread_safe():
    schedule = FaultSchedule([
        FaultSpec(op="op", action="drop-request", times=10),
    ])
    results = []

    def hammer():
        for _ in range(100):
            results.append(schedule("op"))

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Exactly ten decisions fired across all threads, no more.
    assert results.count("drop-request") == 10
    assert len(schedule.fired) == 10


# ---------------------------------------------------------------------------
# Seeded corruption helpers
# ---------------------------------------------------------------------------

def test_seeded_bytes_are_deterministic_and_sized():
    first = seeded_bytes(42, 1000, label="cache-key")
    assert len(first) == 1000
    assert first == seeded_bytes(42, 1000, label="cache-key")
    assert first != seeded_bytes(43, 1000, label="cache-key")
    assert first != seeded_bytes(42, 1000, label="other")


def test_corrupt_cache_entry_rots_in_place(tmp_path):
    from repro.fleet.cache import ResultCache
    from repro.fleet.sweep import SweepSpec, SweepAxis
    from repro.scenarios import klagenfurt

    sweep = SweepSpec(
        bases=(klagenfurt(),),
        axes=(SweepAxis("campaign.handover_interruption_s", (30e-3,)),),
        seeds=(1,), density=1.0)
    run = sweep.expand()[0]
    cache = ResultCache(tmp_path / "cache")
    from repro.fleet import run_sweep
    record = run_sweep(sweep, executor="serial").records[0]
    key = run.spec_key()
    cache.put(key, record)
    size_before = cache.path_for(key).stat().st_size

    path = corrupt_cache_entry(tmp_path / "cache", key, seed=3)
    assert path == cache.path_for(key)
    assert path.stat().st_size == size_before   # same-length garbage
    # The digest check turns the rotten entry into a miss, not bad data.
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()   # dropped so a recompute lands cleanly


def test_corrupt_cache_entry_requires_an_existing_object(tmp_path):
    with pytest.raises(FileNotFoundError):
        corrupt_cache_entry(tmp_path / "cache", "0" * 64)
