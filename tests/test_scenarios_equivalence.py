"""Equivalence: the spec-built Klagenfurt reproduces the legacy
``KlagenfurtScenario`` artifacts bit-for-bit at seed 42.

This is the refactor's safety net: Fig. 2/Fig. 3 matrices, the Table I
hop chain, the Fig. 4 detour length, and the wired baseline must be
*identical* (not approximately equal) between the compatibility wrapper,
a directly compiled spec, and a spec that has been through a full JSON
encode/decode.
"""

import numpy as np
import pytest

from repro.core import InfrastructureEvaluation, KlagenfurtScenario
from repro.scenarios import ScenarioSpec, build, klagenfurt


@pytest.fixture(scope="module")
def legacy():
    return KlagenfurtScenario(seed=42)


@pytest.fixture(scope="module")
def compiled():
    return build(klagenfurt(), seed=42)


@pytest.fixture(scope="module")
def json_compiled():
    return build(ScenarioSpec.from_json(klagenfurt().to_json()), seed=42)


def test_wrapper_is_the_compiled_spec(legacy, compiled):
    assert legacy.spec == compiled.spec
    assert legacy.seed == compiled.seed


def test_table1_hop_chain_identical(legacy, compiled, json_compiled):
    reference = legacy.reference_trace().render_table()
    assert compiled.reference_trace().render_table() == reference
    assert json_compiled.reference_trace().render_table() == reference


def test_fig4_detour_identical(legacy, compiled, json_compiled):
    assert compiled.detour_route_km() == legacy.detour_route_km()
    assert json_compiled.detour_route_km() == legacy.detour_route_km()


def test_wired_baseline_identical(legacy, compiled, json_compiled):
    reference = legacy.wired_baseline()
    assert np.array_equal(compiled.wired_baseline(), reference)
    assert np.array_equal(json_compiled.wired_baseline(), reference)


def test_fig2_fig3_matrices_identical(legacy, compiled):
    stats_a = legacy.statistics(legacy.run_campaign(6.0))
    stats_b = compiled.statistics(compiled.run_campaign(6.0))
    assert np.array_equal(stats_a.mean_matrix_ms(),
                          stats_b.mean_matrix_ms())
    assert np.array_equal(stats_a.std_matrix_ms(), stats_b.std_matrix_ms())


def test_evaluation_by_name_matches_legacy_wrapper():
    """``--scenario klagenfurt`` and the legacy facade print the same
    Fig. 2/Fig. 3/Table I artifacts."""
    by_name = InfrastructureEvaluation(
        seed=42, mean_positions_per_cell=2.0,
        scenario="klagenfurt").run()
    via_wrapper = InfrastructureEvaluation(
        seed=42, mean_positions_per_cell=2.0).run(
            KlagenfurtScenario(seed=42))
    assert by_name.figure2() == via_wrapper.figure2()
    assert by_name.figure3() == via_wrapper.figure3()
    assert by_name.table1() == via_wrapper.table1()
    assert by_name.figure4_km() == via_wrapper.figure4_km()
    assert by_name.gap.summary() == via_wrapper.gap.summary()


def test_edge_breakout_variant_equivalent():
    """The what-if parameters survive the spec round trip too."""
    wrapper = KlagenfurtScenario(seed=42, edge_breakout=True)
    spec = klagenfurt(edge_breakout=True)
    direct = build(ScenarioSpec.from_json(spec.to_json()), seed=42)
    assert wrapper.spec == spec
    a = wrapper.run_campaign(2.0)
    b = direct.run_campaign(2.0)
    assert np.array_equal(a.rtts, b.rtts)
