"""Tests for the application workload models."""

import numpy as np
import pytest

from repro import units
from repro.apps import (
    AR_RTT_BUDGET_S,
    ARGameSession,
    ApplicationProfile,
    FactoryLine,
    FrameCycleAnalysis,
    IotProtocol,
    PROTOCOLS,
    Service,
    ServiceChain,
    SmartCityDeployment,
    VideoStreamConfig,
    all_profiles,
    ar_gaming,
    ar_service_chain,
    autonomous_vehicle,
    overhead_band_s,
    remote_surgery,
    smart_factory,
)
from repro.sim import RngRegistry


# ---------------------------------------------------------------------------
# Service chains
# ---------------------------------------------------------------------------

def test_service_validation():
    with pytest.raises(ValueError):
        Service("", 1e-3)
    with pytest.raises(ValueError):
        Service("x", -1.0)
    with pytest.raises(ValueError):
        Service("x", 1e-3, request_bits=0.0)


def test_chain_end_to_end_composition():
    chain = ServiceChain("c", [Service("a", 1e-3), Service("b", 2e-3)])
    total = chain.end_to_end_s([10e-3, 20e-3])
    assert total == pytest.approx(33e-3)
    assert chain.processing_total_s() == pytest.approx(3e-3)


def test_chain_validation():
    with pytest.raises(ValueError):
        ServiceChain("c", [])
    with pytest.raises(ValueError):
        ServiceChain("c", [Service("a", 1e-3), Service("a", 1e-3)])
    chain = ServiceChain("c", [Service("a", 1e-3)])
    with pytest.raises(ValueError):
        chain.end_to_end_s([1e-3, 2e-3])
    with pytest.raises(ValueError):
        chain.end_to_end_s([-1e-3])


def test_ar_chain_has_three_services():
    chain = ar_service_chain()
    assert len(chain) == 3
    names = [s.name for s in chain.services]
    assert names == ["remote-controller", "trajectory", "video-streaming"]


# ---------------------------------------------------------------------------
# ApplicationProfile
# ---------------------------------------------------------------------------

def test_profile_exceedance_matches_paper():
    """74 ms measured against the 20 ms AR budget -> 270 %."""
    profile = ar_gaming()
    assert profile.exceedance_percent(units.ms(74.0)) == pytest.approx(270.0)


def test_profile_deadline_miss_fraction():
    profile = ar_gaming()
    samples = np.array([0.010, 0.015, 0.025, 0.030])
    assert profile.deadline_miss_fraction(samples) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        profile.deadline_miss_fraction(np.array([]))


def test_profile_validation():
    with pytest.raises(ValueError):
        ApplicationProfile("x", rtt_budget_s=0.0, bandwidth_bps=1.0)
    with pytest.raises(ValueError):
        ApplicationProfile("", rtt_budget_s=1.0, bandwidth_bps=1.0)
    with pytest.raises(ValueError):
        ar_gaming().exceedance_percent(-1.0)


def test_paper_profile_magnitudes():
    av = autonomous_vehicle()
    assert av.daily_volume_bits == pytest.approx(4 * units.TB)
    assert remote_surgery().rtt_budget_s == pytest.approx(units.ms(5.0))
    assert smart_factory().daily_volume_bits == pytest.approx(5 * units.TB)
    assert ar_gaming().rtt_budget_s == pytest.approx(AR_RTT_BUDGET_S)
    assert len(all_profiles()) == 6


# ---------------------------------------------------------------------------
# Video / frame cycle
# ---------------------------------------------------------------------------

def test_frame_interval_at_60fps():
    cfg = VideoStreamConfig(fps=60.0)
    assert cfg.frame_interval_s == pytest.approx(units.ms(16.6), rel=0.01)


def test_video_validation():
    with pytest.raises(ValueError):
        VideoStreamConfig(fps=0.0)
    with pytest.raises(ValueError):
        VideoStreamConfig(bitrate_bps=0.0)
    with pytest.raises(ValueError):
        FrameCycleAnalysis(VideoStreamConfig(), budget_s=0.0)


def test_late_fraction_and_freezes():
    analysis = FrameCycleAnalysis(VideoStreamConfig(codec_latency_s=5e-3),
                                  budget_s=units.ms(20.0), freeze_frames=2)
    # latency = rtt + 5ms; late when rtt > 15ms
    rtts = np.array([0.010, 0.016, 0.017, 0.010, 0.016, 0.010])
    assert analysis.late_fraction(rtts) == pytest.approx(3 / 6)
    assert analysis.freeze_events(rtts) == 1  # one burst of two


def test_sustainable_fps():
    analysis = FrameCycleAnalysis(VideoStreamConfig(codec_latency_s=5e-3),
                                  budget_s=units.ms(20.0))
    assert analysis.sustainable_fps(0.005) == pytest.approx(100.0)
    assert analysis.sustainable_fps(0.050) == 0.0
    with pytest.raises(ValueError):
        analysis.sustainable_fps(-1.0)


# ---------------------------------------------------------------------------
# AR game session
# ---------------------------------------------------------------------------

def test_game_unplayable_on_measured_5g():
    """The paper's point: 61-110 ms RTL makes the 20 ms game impossible."""
    session = ARGameSession()
    measured = np.random.default_rng(1).uniform(0.061, 0.110, 200)
    assert not session.playable(measured)
    stats = session.play_round(measured, RngRegistry(2).stream("game"))
    assert stats.late_fraction == 1.0
    assert stats.unfair_hits > 0


def test_game_playable_on_edge_network():
    session = ARGameSession()
    # 3 ms RTTs: pipeline latency = 3 RTTs + 8 ms processing < 20 ms
    fast = np.full(100, 0.003)
    assert session.playable(fast)
    stats = session.play_round(fast, RngRegistry(3).stream("game"))
    assert stats.late_fraction == 0.0
    assert stats.unfair_hits == 0


def test_game_event_latency_composition():
    session = ARGameSession()
    # processing total = 1 + 3 + 4 ms = 8 ms
    assert session.event_latency_s(0.0, 0.0, 0.0) == pytest.approx(8e-3)
    assert session.event_latency_s(1e-3, 1e-3, 1e-3) == pytest.approx(11e-3)


def test_game_validation():
    with pytest.raises(ValueError):
        ARGameSession(budget_s=0.0)
    with pytest.raises(ValueError):
        ARGameSession(hit_probability=1.5)
    session = ARGameSession()
    with pytest.raises(ValueError):
        session.play_round(np.array([]), RngRegistry(1).stream("g"))
    with pytest.raises(ValueError):
        session.play_round(np.array([0.01]), RngRegistry(1).stream("g"),
                           throws=0)


# ---------------------------------------------------------------------------
# IoT protocols
# ---------------------------------------------------------------------------

def test_protocol_overhead_band_is_5_to_8_ms():
    """Section III-A: IoT protocols add 5-8 ms."""
    lo, hi = overhead_band_s()
    assert lo == pytest.approx(units.ms(5.0))
    assert hi == pytest.approx(units.ms(8.0))


def test_protocol_delivery_latency():
    mqtt = PROTOCOLS[IotProtocol.MQTT]
    # broker path: 2 legs of 2 ms + 5 ms overhead
    assert mqtt.delivery_latency_s(2e-3) == pytest.approx(9e-3)
    coap = PROTOCOLS[IotProtocol.COAP]
    assert coap.delivery_latency_s(2e-3) < mqtt.delivery_latency_s(2e-3)


def test_protocol_qos_increases_latency():
    mqtt = PROTOCOLS[IotProtocol.MQTT]
    assert mqtt.delivery_latency_s(2e-3, qos=1) > \
        mqtt.delivery_latency_s(2e-3, qos=0)
    with pytest.raises(ValueError):
        mqtt.overhead_s(qos=-1)
    with pytest.raises(ValueError):
        mqtt.delivery_latency_s(-1e-3)


def test_user_perceived_budget_with_protocol_overhead():
    """Sec. III-A arithmetic: to keep user-perceived latency below
    16 ms with 5-8 ms protocol overhead, the network leg must go well
    below 10 ms — 6G territory."""
    lo, hi = overhead_band_s()
    network_budget = units.ms(16.0) - hi
    assert network_budget <= units.ms(8.0)


# ---------------------------------------------------------------------------
# Domain workloads
# ---------------------------------------------------------------------------

def test_smart_city_aggregate():
    city = SmartCityDeployment()
    assert city.intersections == 50_000
    assert city.aggregate_bps == pytest.approx(units.gbps(200.0))
    assert city.fits_in(units.tbps(1.0))          # 6G capacity
    assert not city.fits_in(units.gbps(20.0))     # 5G peak
    with pytest.raises(ValueError):
        city.fits_in(0.0)


def test_factory_line_rates():
    line = FactoryLine()
    # 5 TB/day sustained
    assert line.mean_rate_bps == pytest.approx(5 * units.TB / units.DAY)
    assert line.per_sensor_bps == pytest.approx(
        line.mean_rate_bps / line.sensors)
    with pytest.raises(ValueError):
        FactoryLine(sensors=0)


def test_vehicle_daily_volume_is_4tb():
    av = autonomous_vehicle()
    assert units.to_tb(av.daily_volume_bits) == pytest.approx(4.0)
