"""Tests for the fleet execution engine: sweep expansion, the
serial/parallel runner, determinism, the on-disk store, and reporting."""

import json

import pytest

from repro.core import EvaluationSummary, InfrastructureEvaluation
from repro.fleet import (
    FleetResult,
    FleetStore,
    RunRecord,
    SweepAxis,
    SweepSpec,
    fleet_summary,
    run_one,
    run_sweep,
)
from repro.scenarios import klagenfurt, skopje

AXIS = "campaign.handover_interruption_s"
DENSITY = 2.0


def small_sweep(**kwargs) -> SweepSpec:
    defaults = dict(
        bases=(klagenfurt(),),
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),),
        seeds=(42,),
        density=DENSITY,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


@pytest.fixture(scope="module")
def result() -> FleetResult:
    """One small serial fleet shared by the read-only tests."""
    return run_sweep(small_sweep(seeds=(42, 43)))


# ---------------------------------------------------------------------------
# Sweep declaration + expansion
# ---------------------------------------------------------------------------

def test_cartesian_expansion_counts():
    sweep = small_sweep(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),
              SweepAxis("campaign.max_cell_load", (0.9, 0.93))),
        seeds=(42, 43, 44))
    assert sweep.variant_count == 2 * 2 * 2
    assert sweep.run_count == 8 * 3
    runs = sweep.expand()
    assert len(runs) == 24
    assert len({run.run_id for run in runs}) == 24


def test_zip_expansion_walks_axes_in_lockstep():
    sweep = small_sweep(
        axes=(SweepAxis(AXIS, (30e-3, 60e-3)),
              SweepAxis("campaign.max_cell_load", (0.9, 0.93))),
        mode="zip")
    assert sweep.variant_count == 2
    values = [(run.scenario.campaign.handover_interruption_s,
               run.scenario.campaign.max_cell_load)
              for run in sweep.expand()]
    assert values == [(30e-3, 0.9), (60e-3, 0.93)]


def test_zip_rejects_unequal_axis_lengths():
    with pytest.raises(ValueError, match="share one length"):
        small_sweep(axes=(SweepAxis(AXIS, (30e-3, 60e-3)),
                          SweepAxis("campaign.max_cell_load", (0.9,))),
                    mode="zip")


def test_expansion_applies_overrides():
    runs = small_sweep().expand()
    assert [run.scenario.campaign.handover_interruption_s
            for run in runs] == [30e-3, 60e-3]
    # the base spec itself is untouched
    assert klagenfurt().campaign.handover_interruption_s \
        not in (30e-3, 60e-3)


def test_multi_base_variant_names_the_scenario():
    runs = small_sweep(bases=(klagenfurt(), skopje()), seeds=(42,)).expand()
    assert ("scenario", "klagenfurt") in runs[0].variant
    assert ("scenario", "skopje") in runs[-1].variant


def test_sweep_validation():
    with pytest.raises(ValueError, match="at least one base"):
        small_sweep(bases=())
    with pytest.raises(ValueError, match="at least one seed"):
        small_sweep(seeds=())
    with pytest.raises(ValueError, match="unknown sweep mode"):
        small_sweep(mode="diagonal")
    with pytest.raises(ValueError, match="no values"):
        SweepAxis(AXIS, ())
    with pytest.raises(ValueError, match="unique"):
        small_sweep(bases=(klagenfurt(), klagenfurt()))
    with pytest.raises(ValueError, match="seeds must be unique"):
        small_sweep(seeds=(42, 42, 43))


def test_sweep_spec_json_round_trip():
    sweep = small_sweep(bases=(klagenfurt(), skopje()),
                        seeds=(42, 43), mode="cartesian")
    assert SweepSpec.from_json(sweep.to_json()) == sweep
    # through a real encode/decode, not just to_dict
    assert SweepSpec.from_dict(
        json.loads(json.dumps(sweep.to_dict()))) == sweep


# ---------------------------------------------------------------------------
# run_one + the summary record
# ---------------------------------------------------------------------------

def test_run_one_produces_portable_record():
    record = run_one(klagenfurt().to_json(), 42, DENSITY)
    assert record.scenario == "klagenfurt"
    assert record.seed == 42
    assert record.summary.sample_count > 0
    assert record.summary.gap.mobile_wired_factor > 1.0
    assert RunRecord.from_json(record.to_json()) == record


def test_summary_matches_full_evaluation():
    full = InfrastructureEvaluation(
        seed=42, mean_positions_per_cell=DENSITY).run()
    summary = full.summary()
    assert summary == EvaluationSummary.from_dict(
        json.loads(json.dumps(summary.to_dict())))
    assert summary.mean_matrix_ms == tuple(
        tuple(row) for row in full.statistics.mean_matrix_ms().tolist())
    assert summary.gap == full.gap
    assert summary.sample_count == len(full.dataset)


# ---------------------------------------------------------------------------
# Determinism (the RngRegistry stream contract)
# ---------------------------------------------------------------------------

def test_same_spec_and_seed_is_bit_identical():
    spec_json = klagenfurt().to_json()
    first = run_one(spec_json, 42, DENSITY)
    second = run_one(spec_json, 42, DENSITY)
    assert first.to_dict() == second.to_dict()


def test_serial_and_parallel_records_are_bit_identical():
    sweep = small_sweep(seeds=(42, 43))
    serial = run_sweep(sweep, jobs=1)
    parallel = run_sweep(sweep, jobs=2)
    assert [r.to_dict() for r in serial.records] == \
        [r.to_dict() for r in parallel.records]


def test_different_seeds_differ(result):
    by_seed = result.group_by("seed")
    assert set(by_seed) == {42, 43}
    a, b = (group[0] for group in by_seed.values())
    assert a.summary.mean_matrix_ms != b.summary.mean_matrix_ms


# ---------------------------------------------------------------------------
# Store + aggregation + reporting
# ---------------------------------------------------------------------------

def test_store_round_trip(tmp_path, result):
    store = FleetStore(tmp_path / "fleet")
    paths = store.save(result)
    assert (tmp_path / "fleet" / "manifest.json").exists()
    assert (tmp_path / "fleet" / "summary.csv").exists()
    assert len(list((tmp_path / "fleet" / "runs").iterdir())) == 4
    loaded = store.load()
    assert loaded.sweep == result.sweep
    assert [r.to_dict() for r in loaded.records] == \
        [r.to_dict() for r in result.records]
    assert set(paths) == ({"manifest", "summary.csv"}
                          | {r.run_id for r in result.records})


def test_manifest_carries_timing_not_records(tmp_path, result):
    FleetStore(tmp_path).save(result)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert SweepSpec.from_dict(manifest["sweep"]) == result.sweep
    assert len(manifest["runs"]) == len(result)
    assert all("wall_s" in entry for entry in manifest["runs"])
    # records themselves stay timing-free so executions compare equal
    assert "wall_s" not in result.records[0].to_dict()


def test_group_by_axis(result):
    groups = result.group_by(AXIS)
    assert set(groups) == {30e-3, 60e-3}
    assert all(len(records) == 2 for records in groups.values())


def test_summary_rows_aggregate_across_seeds(result):
    header, rows = result.summary_rows()
    assert header[0] == "scenario"
    assert AXIS in header
    assert len(rows) == 2                      # one row per variant
    seeds_column = header.index("seeds")
    assert all(row[seeds_column] == 2 for row in rows)


def test_csv_export(tmp_path, result):
    path = result.to_csv(tmp_path / "fleet.csv")
    lines = (tmp_path / "fleet.csv").read_text().strip().splitlines()
    assert len(lines) == 1 + len(result)
    assert lines[0].startswith("run_id,scenario,seed,density")
    assert AXIS in lines[0]
    assert path.endswith("fleet.csv")


def test_fleet_summary_renders(result):
    text = fleet_summary(result)
    assert "Fleet summary" in text
    assert "4 runs" in text
    assert "jobs=1" in text


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_sweep_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "fleet"
    assert main(["sweep", "--scenario", "klagenfurt",
                 "--set", f"{AXIS}=0.03,0.06",
                 "--seeds", "42", "--jobs", "1",
                 "--density", "2", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "2 variants x 1 seeds = 2 runs" in stdout
    assert "Fleet summary" in stdout
    assert (out / "manifest.json").exists()
    assert (out / "summary.csv").exists()
    assert len(list((out / "runs").iterdir())) == 2


def test_cli_sweep_seed_range_and_both_cities(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["sweep", "--scenario", "klagenfurt,skopje",
                 "--seeds", "42:44", "--density", "2"]) == 0
    stdout = capsys.readouterr().out
    assert "2 variants x 2 seeds = 4 runs" in stdout
    assert "klagenfurt" in stdout and "skopje" in stdout


def test_cli_sweep_bad_axis_path_is_clean_error(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--scenario", "klagenfurt",
                 "--set", "campaign.frobnicate=1", "--seeds", "42"]) == 2
    assert "no field 'frobnicate'" in capsys.readouterr().err


def test_cli_sweep_malformed_set_is_clean_error(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--scenario", "klagenfurt",
                 "--set", "no-equals-sign"]) == 2
    assert "--set wants" in capsys.readouterr().err
