"""Tests for the Section V remedies: peering, UPF, CPF, slicing."""

import numpy as np
import pytest

from repro import units
from repro.core import (
    CpfEnhancementStudy,
    DynamicUpfSelector,
    FIVE_G_CAPABILITY,
    HypervisorPlacementStudy,
    LocalPeeringExperiment,
    KlagenfurtScenario,
    QosCacheStudy,
    RecommendationEngine,
    RequirementsAnalysis,
    SIX_G_CAPABILITY,
    SlicingStudy,
    UpfPlacementStudy,
    render_comparison_table,
)
from repro.apps import all_profiles
from repro.cn import PlacementObjective
from repro.sim import RngRegistry


# ---------------------------------------------------------------------------
# Requirements analysis (Section III)
# ---------------------------------------------------------------------------

def test_5g_fails_latency_critical_apps():
    analysis = RequirementsAnalysis(FIVE_G_CAPABILITY)
    failed = {v.application for v in analysis.unsatisfied(all_profiles())}
    assert "remote-surgery" in failed       # 5 ms budget vs 5 ms edge RTT
    assert "massive-iot" in failed          # 10^6 devices/km2 vs 10^5


def test_6g_satisfies_all_profiles():
    analysis = RequirementsAnalysis(SIX_G_CAPABILITY)
    assert analysis.unsatisfied(all_profiles()) == []


def test_headroom_monotone_between_generations():
    for profile in all_profiles():
        v5 = RequirementsAnalysis(FIVE_G_CAPABILITY).judge(profile)
        v6 = RequirementsAnalysis(SIX_G_CAPABILITY).judge(profile)
        assert v6.latency_headroom > v5.latency_headroom


def test_judge_all_validation():
    with pytest.raises(ValueError):
        RequirementsAnalysis(FIVE_G_CAPABILITY).judge_all([])


# ---------------------------------------------------------------------------
# Local peering (Section V-A)
# ---------------------------------------------------------------------------

@pytest.fixture
def fresh_scenario():
    return KlagenfurtScenario(seed=42)


def test_peering_eliminates_detour(fresh_scenario):
    outcome = LocalPeeringExperiment(fresh_scenario).run()
    assert outcome.detour_eliminated
    assert outcome.after_path_km < 20.0
    assert outcome.before_path_km > 2000.0


def test_peering_reaches_1ms(fresh_scenario):
    """Paper (Horvath [3]): local peering can reach ~1 ms RTT."""
    outcome = LocalPeeringExperiment(fresh_scenario).run()
    assert outcome.after_rtt_s < units.ms(1.5)


def test_peering_shortens_as_path(fresh_scenario):
    outcome = LocalPeeringExperiment(fresh_scenario).run()
    assert len(outcome.before_as_path) == 6
    assert len(outcome.after_as_path) == 2
    assert outcome.after_hops < outcome.before_hops


def test_peering_cannot_apply_twice(fresh_scenario):
    exp = LocalPeeringExperiment(fresh_scenario)
    exp.apply()
    with pytest.raises(RuntimeError):
        exp.apply()


# ---------------------------------------------------------------------------
# UPF integration (Section V-B)
# ---------------------------------------------------------------------------

def test_edge_upf_hits_5_to_6_2ms_band():
    """Paper: 'UPF integration can achieve latencies between 5 and
    6.2 ms'."""
    rtts = UpfPlacementStudy().compare()
    assert units.ms(5.0) <= rtts["edge"] <= units.ms(6.2)


def test_upf_tier_ordering():
    rtts = UpfPlacementStudy().compare()
    assert rtts["edge"] < rtts["regional-core"] < rtts["central-cloud"]


def test_upf_reduction_up_to_90_percent():
    """Paper: 'a reduction of up to 90% compared to our evaluation
    results exceeding 62 ms'."""
    study = UpfPlacementStudy()
    assert study.reduction_vs_measured(units.ms(62.0)) >= 0.90
    with pytest.raises(ValueError):
        study.reduction_vs_measured(0.0)


def test_upf_sampled_matches_mean():
    study = UpfPlacementStudy()
    edge = study.deployments()[0]
    rng = RngRegistry(5).stream("upf")
    samples = [study.sample_rtt_s(edge, rng) for _ in range(3000)]
    assert np.mean(samples) == pytest.approx(study.mean_rtt_s(edge),
                                             rel=0.05)


def test_dynamic_selector_prioritises_latency_critical():
    study = UpfPlacementStudy()
    selector = DynamicUpfSelector(study, edge_capacity_flows=2)
    # Bulk flow (loose budget) -> cloud, preserving edge capacity.
    assert selector.select(delay_budget_s=0.5).name == "central-cloud"
    # AR-grade flows -> edge, until capacity runs out.
    assert selector.select(delay_budget_s=0.010).name == "edge"
    assert selector.select(delay_budget_s=0.010).name == "edge"
    assert selector.select(delay_budget_s=0.010).name == "central-cloud"
    selector.release()
    assert selector.select(delay_budget_s=0.010).name == "edge"


def test_dynamic_selector_validation():
    study = UpfPlacementStudy()
    with pytest.raises(ValueError):
        DynamicUpfSelector(study, edge_capacity_flows=-1)
    selector = DynamicUpfSelector(study)
    with pytest.raises(ValueError):
        selector.select(0.0)
    with pytest.raises(RuntimeError):
        selector.release()


# ---------------------------------------------------------------------------
# CPF enhancement (Section V-C)
# ---------------------------------------------------------------------------

def test_ric_consolidation_never_hurts_and_improves_data_path():
    """The hybrid deployment improves PDU setup and service request;
    registration is a wash (the AMF moves closer to the gNB but farther
    from the still-central UDM/AUSF, two backhaul round trips either
    way), which is exactly the paper's argument for a hybrid rather
    than fully decentralised control plane."""
    study = CpfEnhancementStudy()
    for comparison in study.compare_all():
        assert comparison.ric_consolidated_s <= \
            comparison.centralised_s + 1e-12
        assert comparison.improvement_fraction < 1.0
    assert study.compare_pdu_session().improvement_s > 0.0
    assert study.compare_service_request().improvement_s > 0.0


def test_pdu_session_improvement_magnitude():
    study = CpfEnhancementStudy()
    comparison = study.compare_pdu_session()
    # Both gNB<->AMF legs plus the N4 leg shed the Vienna round trips.
    assert comparison.improvement_s > units.ms(4.0)


def test_registration_keeps_subscriber_data_central():
    """Hybrid deployment: UDM/AUSF stay in Vienna, so registration
    improves less (relatively) than the service request."""
    study = CpfEnhancementStudy()
    registration = study.compare_registration()
    service = study.compare_service_request()
    assert service.improvement_fraction > registration.improvement_fraction


def test_qos_cache_reduces_lookup_latency():
    """Paper ([32]): context-aware rules reduce lookup and update
    latencies."""
    result = QosCacheStudy().run()
    assert result["context_aware_s"] < result["linear_scan_s"]
    assert result["hit_rate"] > 0.5


def test_qos_cache_validation():
    with pytest.raises(ValueError):
        QosCacheStudy().run(critical_flows=0)


# ---------------------------------------------------------------------------
# Slicing + hypervisor placement (Section V-C)
# ---------------------------------------------------------------------------

def test_slicing_protects_urllc_under_pressure():
    outcome = SlicingStudy().run()
    assert outcome.isolated_wait_s < outcome.shared_wait_s
    assert outcome.improvement_factor > 2.0


def test_slicing_sweep_shows_crossover():
    study = SlicingStudy()
    sweep = study.sweep_embb_load(
        [units.gbps(1.0), units.gbps(4.0), units.gbps(7.6)])
    # At light eMBB load isolation is a net cost; under pressure it wins.
    assert sweep[0][1].improvement_factor < 1.0
    assert sweep[-1][1].improvement_factor > 1.0


def test_hypervisor_objectives_tradeoff():
    study = HypervisorPlacementStudy()
    results = study.compare(k=3)
    latency = results[PlacementObjective.LATENCY.value]
    resilience = results[PlacementObjective.RESILIENCE.value]
    balance = results[PlacementObjective.LOAD_BALANCE.value]
    assert resilience.worst_backup_latency_s <= \
        latency.worst_backup_latency_s + 1e-12
    assert balance.max_tenants_per_site <= latency.max_tenants_per_site


def test_hypervisor_latency_improves_with_k():
    study = HypervisorPlacementStudy()
    curve = study.latency_vs_k([1, 2, 3, 4])
    values = [v for _, v in curve]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# Recommendation engine (Section V synthesis)
# ---------------------------------------------------------------------------

def test_recommendation_engine_ranks_remedies(fresh_scenario):
    engine = RecommendationEngine(fresh_scenario)
    recs = engine.evaluate_all(measured_rtt_s=units.ms(73.0))
    assert len(recs) == 3
    factors = [r.improvement_factor for r in recs]
    assert factors == sorted(factors, reverse=True)
    names = {r.name for r in recs}
    assert names == {"local-peering", "upf-integration", "cpf-enhancement"}
    for rec in recs:
        assert rec.improvement_factor > 1.0
        assert "ms" in rec.render()


def test_comparison_table_renders():
    table = render_comparison_table(
        ["arm", "rtt_ms"], [["edge", 5.2], ["core", 62.0]], title="UPF")
    assert "UPF" in table and "edge" in table and "62.00" in table
    with pytest.raises(ValueError):
        render_comparison_table([], [])
    with pytest.raises(ValueError):
        render_comparison_table(["a"], [["x", "y"]])
