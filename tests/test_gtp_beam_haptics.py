"""Tests for GTP tunnelling, beam management and haptic loops."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.apps import HapticConfig, HapticLoop
from repro.cn import GtpTunnel
from repro.ran import BeamConfig, BeamManager
from repro.sim import RngRegistry


# ---------------------------------------------------------------------------
# GTP-U tunnelling
# ---------------------------------------------------------------------------

def test_gtp_overhead_bytes():
    assert GtpTunnel().overhead_bytes == 40            # with QFI extension
    assert GtpTunnel(use_extension_header=False).overhead_bytes == 36


def test_gtp_max_payload_and_mss():
    tunnel = GtpTunnel(path_mtu_bytes=1500)
    assert tunnel.max_user_payload_bytes == 1460
    assert tunnel.mss_clamp_bytes() == 1420


def test_gtp_fragmentation_kicks_in_at_mtu():
    tunnel = GtpTunnel(path_mtu_bytes=1500)
    assert tunnel.fragments(1460) == 1
    assert tunnel.fragments(1461) == 2
    assert tunnel.fragments(1500) == 2     # the classic full-size case
    with pytest.raises(ValueError):
        tunnel.fragments(0)


def test_gtp_goodput_small_packets_suffer_most():
    tunnel = GtpTunnel()
    iot = tunnel.goodput_efficiency(64)          # tiny sensor reading
    bulk = tunnel.goodput_efficiency(1400)
    assert iot < 0.7 < bulk
    assert tunnel.effective_goodput_bps(units.gbps(1.0), 1400) == \
        pytest.approx(units.gbps(1.0) * bulk)
    with pytest.raises(ValueError):
        tunnel.effective_goodput_bps(0.0, 100)


def test_gtp_mtu_validation():
    with pytest.raises(ValueError):
        GtpTunnel(path_mtu_bytes=500)


@given(st.integers(min_value=1, max_value=9000))
def test_gtp_wire_bytes_exceed_user_bytes(size):
    tunnel = GtpTunnel()
    assert tunnel.wire_bytes(size) > size
    assert 0.0 < tunnel.goodput_efficiency(size) < 1.0


# ---------------------------------------------------------------------------
# Beam management
# ---------------------------------------------------------------------------

def test_beam_sweep_arithmetic():
    mgr = BeamManager(BeamConfig(n_beams=64, beams_per_burst=8,
                                 ssb_period_s=20e-3))
    assert mgr.sweep_bursts == 8
    assert mgr.initial_acquisition_s() == pytest.approx(0.16)


def test_beam_failure_outage():
    mgr = BeamManager(BeamConfig(failure_detection_bursts=2,
                                 ssb_period_s=20e-3, recovery_s=10e-3))
    assert mgr.failure_outage_s() == pytest.approx(0.05)


def test_beam_outage_rate_grows_with_blockage():
    calm = BeamManager(BeamConfig(blockage_rate_hz=0.05))
    busy = BeamManager(BeamConfig(blockage_rate_hz=0.5))
    assert calm.mean_outage_rate() < busy.mean_outage_rate()
    off = BeamManager(BeamConfig(blockage_rate_hz=0.0))
    assert off.mean_outage_rate() == 0.0


def test_beam_blockage_fattens_latency_tail():
    mgr = BeamManager(BeamConfig(blockage_rate_hz=1.0))
    rng = RngRegistry(3).stream("beam")
    latencies = mgr.latency_with_blockage(2e-3, rng, size=50_000)
    assert latencies.min() == pytest.approx(2e-3)
    assert latencies.max() > 2e-3 + 0.02   # some packets hit recovery
    # mean matches base + P(outage) * E[residual]
    expected = 2e-3 + mgr.mean_outage_rate() * mgr.failure_outage_s() / 2
    assert float(np.mean(latencies)) == pytest.approx(expected, rel=0.05)


def test_beam_session_outage_sampling():
    mgr = BeamManager(BeamConfig(blockage_rate_hz=0.2))
    rng = RngRegistry(5).stream("beam2")
    outages = mgr.sample_session_outages(600.0, rng)
    # ~120 expected; Poisson 3-sigma band
    assert 80 < outages.size < 160
    assert (np.diff(outages) >= 0).all()
    with pytest.raises(ValueError):
        mgr.sample_session_outages(0.0, rng)


def test_beam_validation():
    with pytest.raises(ValueError):
        BeamConfig(n_beams=0)
    with pytest.raises(ValueError):
        BeamConfig(beams_per_burst=100, n_beams=64)
    with pytest.raises(ValueError):
        BeamConfig(ssb_period_s=0.0)
    mgr = BeamManager(BeamConfig())
    with pytest.raises(ValueError):
        mgr.latency_with_blockage(-1.0, RngRegistry(1).stream("x"))


# ---------------------------------------------------------------------------
# Haptic loops
# ---------------------------------------------------------------------------

def test_haptic_stiffness_falls_with_delay():
    loop = HapticLoop(HapticConfig())
    k = [loop.max_stable_stiffness_n_m(rtt)
         for rtt in (0.0, 1e-3, 5e-3, 20e-3)]
    assert all(a > b for a, b in zip(k, k[1:]))


def test_haptic_surgery_needs_5ms_class_rtt():
    """The paper's remote-surgery budget emerges from the stability
    bound: the required stiffness survives a ~5 ms RTT but not the
    measured 61+ ms."""
    loop = HapticLoop(HapticConfig())
    assert loop.stable(units.ms(5.0))
    assert not loop.stable(units.ms(61.0))
    tolerable = loop.max_tolerable_rtt_s()
    assert units.ms(3.0) < tolerable < units.ms(40.0)
    # Consistency: just inside is stable, just outside is not.
    assert loop.stable(tolerable * 0.99)
    assert not loop.stable(tolerable * 1.01)


def test_haptic_update_rate_feasibility():
    loop = HapticLoop(HapticConfig(update_rate_hz=1000.0))
    assert loop.update_rate_feasible(0.5e-3)
    assert not loop.update_rate_feasible(2e-3)


def test_haptic_deadline_misses_on_measured_field():
    loop = HapticLoop(HapticConfig())
    measured = np.random.default_rng(1).uniform(0.061, 0.110, 500)
    assert loop.deadline_miss_fraction(measured) == 1.0
    sixg = np.full(500, 0.3e-3)
    assert loop.deadline_miss_fraction(sixg) == 0.0


def test_haptic_validation():
    with pytest.raises(ValueError):
        HapticConfig(update_rate_hz=0.0)
    with pytest.raises(ValueError):
        HapticConfig(damping_ns_m=0.0)
    loop = HapticLoop(HapticConfig())
    with pytest.raises(ValueError):
        loop.max_stable_stiffness_n_m(-1.0)
    with pytest.raises(ValueError):
        loop.deadline_miss_fraction(np.array([]))


def test_haptic_tolerable_rtt_never_negative():
    demanding = HapticConfig(required_stiffness_n_m=1e6)
    assert HapticLoop(demanding).max_tolerable_rtt_s() == 0.0
