"""Tests for IPv4 addressing and PTR naming."""

import pytest
from hypothesis import given, strategies as st

from repro.net import IPv4Address, IPv4Prefix, PrefixAllocator, ptr_name


# ---------------------------------------------------------------------------
# IPv4Address
# ---------------------------------------------------------------------------

def test_parse_and_render():
    addr = IPv4Address.parse("37.19.223.61")
    assert addr.dotted == "37.19.223.61"
    assert addr.octets == (37, 19, 223, 61)
    assert str(addr) == "37.19.223.61"


def test_dashed_forms():
    addr = IPv4Address.parse("37.19.223.61")
    assert addr.dashed == "37-19-223-61"
    assert addr.reverse_dashed == "061-223-019-037"


def test_parse_rejects_malformed():
    for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "1..2.3"):
        with pytest.raises(ValueError):
            IPv4Address.parse(bad)


def test_value_range_enforced():
    with pytest.raises(ValueError):
        IPv4Address(-1)
    with pytest.raises(ValueError):
        IPv4Address(2 ** 32)


def test_private_detection():
    assert IPv4Address.parse("10.12.128.1").is_private()
    assert IPv4Address.parse("172.16.0.1").is_private()
    assert IPv4Address.parse("172.32.0.1").is_private() is False
    assert IPv4Address.parse("192.168.1.1").is_private()
    assert IPv4Address.parse("185.156.45.138").is_private() is False


def test_ordering_is_numeric():
    assert IPv4Address.parse("1.0.0.2") < IPv4Address.parse("2.0.0.1")


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_parse_render_round_trip(value):
    addr = IPv4Address(value)
    assert IPv4Address.parse(addr.dotted) == addr


# ---------------------------------------------------------------------------
# IPv4Prefix
# ---------------------------------------------------------------------------

def test_prefix_parse_and_contains():
    pfx = IPv4Prefix.parse("185.156.45.0/24")
    assert IPv4Address.parse("185.156.45.138") in pfx
    assert IPv4Address.parse("185.156.46.1") not in pfx
    assert pfx.host_count == 256


def test_prefix_rejects_host_bits():
    with pytest.raises(ValueError):
        IPv4Prefix.parse("185.156.45.1/24")


def test_prefix_rejects_bad_length():
    with pytest.raises(ValueError):
        IPv4Prefix(IPv4Address.parse("10.0.0.0"), 33)


def test_prefix_host_indexing():
    pfx = IPv4Prefix.parse("10.0.0.0/30")
    assert pfx.host(1).dotted == "10.0.0.1"
    with pytest.raises(IndexError):
        pfx.host(4)


def test_prefix_subnets():
    pfx = IPv4Prefix.parse("10.0.0.0/24")
    subs = list(pfx.subnets(26))
    assert len(subs) == 4
    assert subs[0].network.dotted == "10.0.0.0"
    assert subs[-1].network.dotted == "10.0.0.192"


def test_subnets_rejects_shorter_length():
    pfx = IPv4Prefix.parse("10.0.0.0/24")
    with pytest.raises(ValueError):
        list(pfx.subnets(16))


# ---------------------------------------------------------------------------
# PrefixAllocator
# ---------------------------------------------------------------------------

def test_allocator_sequential_and_unique():
    alloc = PrefixAllocator(IPv4Prefix.parse("185.0.20.0/24"))
    a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
    assert a.dotted == "185.0.20.1"
    assert len({a, b, c}) == 3


def test_allocator_exhaustion():
    alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/30"))
    alloc.allocate()
    alloc.allocate()
    with pytest.raises(RuntimeError):
        alloc.allocate()   # only .1 and .2 usable in a /30


def test_allocator_rejects_tiny_aggregates():
    with pytest.raises(ValueError):
        PrefixAllocator(IPv4Prefix.parse("10.0.0.0/31"))


def test_allocate_subnet_is_aligned_and_disjoint():
    alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/24"))
    alloc.allocate()  # consume 10.0.0.1
    sub1 = alloc.allocate_subnet(28)
    sub2 = alloc.allocate_subnet(28)
    assert sub1.aggregate.network.value % 16 == 0
    assert sub2.aggregate.network.value == sub1.aggregate.network.value + 16
    # Parent cursor moved past the carved subnets
    nxt = alloc.allocate()
    assert nxt.value >= sub2.aggregate.network.value + 16


def test_allocate_subnet_overflow():
    alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/28"))
    with pytest.raises(RuntimeError):
        alloc.allocate_subnet(26)  # /26 larger than the /28 aggregate


# ---------------------------------------------------------------------------
# ptr_name
# ---------------------------------------------------------------------------

def test_ptr_name_matches_table1_style():
    addr = IPv4Address.parse("37.19.223.61")
    assert ptr_name("unn-{dashed}.datapacket.com", addr) == \
        "unn-37-19-223-61.datapacket.com"


def test_ptr_name_reverse_style():
    addr = IPv4Address.parse("195.16.228.3")
    assert ptr_name("{reverse}.ascus.at", addr) == "003-228-016-195.ascus.at"


def test_ptr_name_extra_fields():
    addr = IPv4Address.parse("185.156.45.138")
    assert ptr_name("vl204.{pop}-core-2.cdn77.com", addr, pop="vie-itx1") == \
        "vl204.vie-itx1-core-2.cdn77.com"
