"""Tests for control-plane NFs, the SBI bus, and 3GPP procedures."""

import pytest

from repro import units
from repro.geo import GeoPoint, KLAGENFURT, VIENNA
from repro.cn import NetworkFunction, NFKind, ProcedureBuilder, SbiBus, SiteTier
from repro.sim import RngRegistry


def core_nf(kind, name=None, location=VIENNA, tier=SiteTier.REGIONAL_CORE,
            **kw):
    return NetworkFunction(name=name or kind.value, kind=kind,
                           location=location, tier=tier, **kw)


@pytest.fixture
def bus():
    b = SbiBus()
    for kind in (NFKind.AMF, NFKind.SMF, NFKind.PCF, NFKind.UDM,
                 NFKind.AUSF):
        b.register(core_nf(kind))
    return b


# ---------------------------------------------------------------------------
# NetworkFunction
# ---------------------------------------------------------------------------

def test_nf_default_processing_by_kind():
    amf = core_nf(NFKind.AMF)
    udm = core_nf(NFKind.UDM)
    assert amf.processing_s == pytest.approx(2.0e-3)
    assert udm.processing_s == pytest.approx(1.0e-3)


def test_nf_response_grows_with_load():
    calm = core_nf(NFKind.AMF, name="calm", load=0.0)
    busy = core_nf(NFKind.AMF, name="busy", load=0.8)
    assert busy.mean_response_s() > calm.mean_response_s()
    assert calm.mean_response_s() == pytest.approx(2.0e-3)


def test_nf_sampled_response_reproducible():
    nf = core_nf(NFKind.SMF, load=0.5)
    r1 = nf.sample_response_s(RngRegistry(3).stream("nf"))
    r2 = nf.sample_response_s(RngRegistry(3).stream("nf"))
    assert r1 == r2
    assert r1 >= nf.processing_s


def test_nf_validation():
    with pytest.raises(ValueError):
        core_nf(NFKind.AMF, name="bad", load=1.0)
    with pytest.raises(ValueError):
        NetworkFunction(name="", kind=NFKind.AMF, location=VIENNA)


# ---------------------------------------------------------------------------
# SbiBus
# ---------------------------------------------------------------------------

def test_bus_registry(bus):
    assert bus.nf("amf").kind is NFKind.AMF
    with pytest.raises(KeyError):
        bus.nf("nope")
    with pytest.raises(ValueError):
        bus.register(core_nf(NFKind.AMF))   # duplicate name 'amf'


def test_bus_find_by_kind_and_tier(bus):
    bus.register(core_nf(NFKind.AMF, name="amf-edge", location=KLAGENFURT,
                         tier=SiteTier.EDGE))
    assert len(bus.find(NFKind.AMF)) == 2
    assert len(bus.find(NFKind.AMF, tier=SiteTier.EDGE)) == 1


def test_hop_latency_scales_with_distance(bus):
    local = bus.hop_s(KLAGENFURT, KLAGENFURT)
    far = bus.hop_s(KLAGENFURT, VIENNA)
    assert local == pytest.approx(0.3e-3)   # overhead only
    # ~246 km fibre (with circuity) -> ~1.2 ms + overhead
    assert far == pytest.approx(1.53e-3, rel=0.05)


def test_request_response_is_two_hops_plus_residence(bus):
    amf = bus.nf("amf")
    total = bus.request_response_s(KLAGENFURT, amf)
    expected = 2 * bus.hop_s(KLAGENFURT, amf.location) + amf.mean_response_s()
    assert total == pytest.approx(expected)


def test_bus_validation():
    with pytest.raises(ValueError):
        SbiBus(per_message_overhead_s=-1.0)
    with pytest.raises(ValueError):
        SbiBus(circuity=0.5)


# ---------------------------------------------------------------------------
# Procedures
# ---------------------------------------------------------------------------

def test_registration_has_all_legs(bus):
    builder = ProcedureBuilder(bus, air_one_way_s=units.ms(5.0))
    proc = builder.registration(
        KLAGENFURT, amf=bus.nf("amf"), ausf=bus.nf("ausf"),
        udm=bus.nf("udm"), pcf=bus.nf("pcf"))
    assert len(proc) == 9
    assert proc.total_s > units.ms(20.0)   # centralised core: slow


def test_pdu_session_faster_with_edge_core(bus):
    """Moving AMF/SMF/PCF (and the UPF) to the edge shrinks the setup —
    the quantitative core of Sec. V-C."""
    builder = ProcedureBuilder(bus, air_one_way_s=units.ms(5.0))
    central = builder.pdu_session_establishment(
        KLAGENFURT, amf=bus.nf("amf"), smf=bus.nf("smf"),
        pcf=bus.nf("pcf"), upf_site=VIENNA)

    edge_bus = SbiBus()
    edge = {}
    for kind in (NFKind.AMF, NFKind.SMF, NFKind.PCF):
        edge[kind] = edge_bus.register(core_nf(
            kind, name=f"{kind.value}-edge", location=KLAGENFURT,
            tier=SiteTier.EDGE))
    edge_builder = ProcedureBuilder(edge_bus, air_one_way_s=units.ms(5.0))
    local = edge_builder.pdu_session_establishment(
        KLAGENFURT, amf=edge[NFKind.AMF], smf=edge[NFKind.SMF],
        pcf=edge[NFKind.PCF], upf_site=KLAGENFURT)

    assert local.total_s < central.total_s
    # The air legs are identical; the two gNB<->AMF backhaul legs shrink
    # by ~2.5 ms (Klagenfurt-Vienna round trip) each.
    assert central.total_s - local.total_s > units.ms(4.5)


def test_service_request_is_short(bus):
    builder = ProcedureBuilder(bus, air_one_way_s=units.ms(5.0))
    proc = builder.service_request(KLAGENFURT, amf=bus.nf("amf"))
    assert len(proc) == 3
    assert proc.total_s < units.ms(25.0)


def test_procedure_with_sampled_responses(bus):
    builder = ProcedureBuilder(bus, air_one_way_s=units.ms(5.0))
    rng = RngRegistry(9).stream("proc")
    proc = builder.registration(
        KLAGENFURT, amf=bus.nf("amf"), ausf=bus.nf("ausf"),
        udm=bus.nf("udm"), pcf=bus.nf("pcf"), rng=rng)
    assert proc.total_s > 0


def test_builder_validation(bus):
    with pytest.raises(ValueError):
        ProcedureBuilder(bus, air_one_way_s=-1.0)
