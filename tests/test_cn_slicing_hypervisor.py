"""Tests for network slicing and hypervisor placement."""

import pytest

from repro import units
from repro.cn import (
    HypervisorPlanner,
    NetworkSlice,
    PlacementObjective,
    SliceManager,
    SliceType,
)
from repro.geo import BUCHAREST, GeoPoint, KLAGENFURT, PRAGUE, VIENNA


# ---------------------------------------------------------------------------
# Slicing
# ---------------------------------------------------------------------------

@pytest.fixture
def pool():
    """A lightly loaded URLLC slice sharing the pool with heavy eMBB —
    the aggressor/victim configuration where isolation matters."""
    mgr = SliceManager(capacity_bps=units.gbps(10.0))
    mgr.admit(NetworkSlice("urllc", SliceType.URLLC, 0.2,
                           offered_load_bps=units.gbps(0.5)))
    mgr.admit(NetworkSlice("embb", SliceType.EMBB, 0.8,
                           offered_load_bps=units.gbps(7.5)))
    return mgr


def test_slice_validation():
    with pytest.raises(ValueError):
        NetworkSlice("", SliceType.EMBB, 0.5)
    with pytest.raises(ValueError):
        NetworkSlice("x", SliceType.EMBB, 0.0)
    with pytest.raises(ValueError):
        NetworkSlice("x", SliceType.EMBB, 1.5)
    with pytest.raises(ValueError):
        NetworkSlice("x", SliceType.EMBB, 0.5, offered_load_bps=-1.0)


def test_admission_rejects_oversubscription(pool):
    with pytest.raises(ValueError, match="reserve"):
        pool.admit(NetworkSlice("mmtc", SliceType.MMTC, 0.3))


def test_admission_rejects_overloaded_slice():
    mgr = SliceManager(capacity_bps=units.gbps(10.0))
    with pytest.raises(ValueError, match="more load"):
        mgr.admit(NetworkSlice("greedy", SliceType.EMBB, 0.1,
                               offered_load_bps=units.gbps(2.0)))


def test_duplicate_slice_rejected(pool):
    with pytest.raises(ValueError):
        pool.admit(NetworkSlice("urllc", SliceType.URLLC, 0.1))


def test_release(pool):
    pool.release("embb")
    with pytest.raises(KeyError):
        pool.slice("embb")
    with pytest.raises(KeyError):
        pool.release("embb")


def test_sliced_vs_shared_utilisation(pool):
    # URLLC slice alone: 0.5G over 2G reserved = 0.25
    assert pool.sliced_utilisation("urllc") == pytest.approx(0.25)
    # Shared: 8G over 10G = 0.8
    assert pool.shared_utilisation() == pytest.approx(0.8)


def test_isolation_protects_urllc_from_embb_load(pool):
    """The slicing claim: with isolation the lightly loaded URLLC slice
    sees its own quiet queue; without, it queues behind eMBB bulk at
    80 % aggregate utilisation."""
    service = 10e-6
    isolated = pool.queueing_delay_s("urllc", service, isolated=True)
    shared = pool.queueing_delay_s("urllc", service, isolated=False)
    assert isolated < shared


def test_isolation_costs_capacity_when_pool_is_quiet():
    """The counterpoint the model must also capture: with a quiet
    aggregate, a small dedicated share is *slower* than the shared pool
    (the slice only owns a fraction of the servers)."""
    mgr = SliceManager(capacity_bps=units.gbps(10.0))
    mgr.admit(NetworkSlice("urllc", SliceType.URLLC, 0.2,
                           offered_load_bps=units.gbps(0.5)))
    mgr.admit(NetworkSlice("embb", SliceType.EMBB, 0.6,
                           offered_load_bps=units.gbps(1.0)))
    service = 10e-6
    assert mgr.queueing_delay_s("urllc", service, isolated=True) > \
        mgr.queueing_delay_s("urllc", service, isolated=False)


def test_shared_overload_detected():
    mgr = SliceManager(capacity_bps=units.gbps(1.0))
    mgr.admit(NetworkSlice("a", SliceType.EMBB, 0.5,
                           offered_load_bps=units.mbps(499.0)))
    mgr.admit(NetworkSlice("b", SliceType.EMBB, 0.5,
                           offered_load_bps=units.mbps(499.0)))
    # each slice is admissible in isolation; aggregate nearly saturates
    assert mgr.shared_utilisation() == pytest.approx(0.998)


def test_manager_validation():
    with pytest.raises(ValueError):
        SliceManager(0.0)
    mgr = SliceManager(1e9)
    mgr.admit(NetworkSlice("a", SliceType.EMBB, 0.5, offered_load_bps=1e8))
    with pytest.raises(ValueError):
        mgr.queueing_delay_s("a", 0.0)


# ---------------------------------------------------------------------------
# Hypervisor placement
# ---------------------------------------------------------------------------

@pytest.fixture
def planner():
    candidates = [KLAGENFURT, VIENNA, PRAGUE, BUCHAREST]
    tenants = [
        KLAGENFURT,
        GeoPoint(46.7, 14.4),      # near Klagenfurt
        VIENNA,
        GeoPoint(48.3, 16.2),      # near Vienna
        PRAGUE,
    ]
    return HypervisorPlanner(candidates, tenants)


def test_latency_placement_covers_clusters(planner):
    result = planner.place(2, PlacementObjective.LATENCY)
    assert len(result.hypervisor_sites) == 2
    # With two hypervisors over the Klagenfurt/Vienna/Prague tenants the
    # worst tenant must end up within intra-region distance (< 2 ms);
    # a single hypervisor cannot achieve that.
    assert result.worst_latency_s < units.ms(2.0)
    single = planner.place(1, PlacementObjective.LATENCY)
    assert single.worst_latency_s > result.worst_latency_s


def test_more_hypervisors_never_hurt_latency(planner):
    worst = [planner.place(k, PlacementObjective.LATENCY).worst_latency_s
             for k in (1, 2, 3, 4)]
    assert all(a >= b - 1e-12 for a, b in zip(worst, worst[1:]))


def test_resilience_placement_bounds_backup_latency(planner):
    lat = planner.place(3, PlacementObjective.LATENCY)
    res = planner.place(3, PlacementObjective.RESILIENCE)
    assert res.worst_backup_latency_s <= lat.worst_backup_latency_s + 1e-12
    # single hypervisor: no backup exists
    assert planner.place(
        1, PlacementObjective.LATENCY).worst_backup_latency_s == float("inf")


def test_load_balance_spreads_tenants(planner):
    lat = planner.place(2, PlacementObjective.LATENCY)
    bal = planner.place(2, PlacementObjective.LOAD_BALANCE)
    assert bal.max_tenants_per_site <= lat.max_tenants_per_site
    # 5 tenants over 2 sites: best possible is 3
    assert bal.max_tenants_per_site == 3


def test_assignment_consistency(planner):
    result = planner.place(2, PlacementObjective.LATENCY)
    assert len(result.assignment) == 5
    for site in result.assignment:
        assert site in result.hypervisor_sites


def test_planner_validation(planner):
    with pytest.raises(ValueError):
        planner.place(0, PlacementObjective.LATENCY)
    with pytest.raises(ValueError):
        planner.place(9, PlacementObjective.LATENCY)
    with pytest.raises(ValueError):
        HypervisorPlanner([], [KLAGENFURT])
    with pytest.raises(ValueError):
        HypervisorPlanner([KLAGENFURT], [])
