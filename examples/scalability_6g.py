#!/usr/bin/env python
"""Scalability analysis (Sections II-C / III-C): 5G vs 6G density.

Sweeps the active-device population of one cell and reports scheduler
utilisation and air-interface latency under 5G and 6G configurations,
plus the requirements verdicts for the paper's application portfolio
and the smart-city / smart-factory aggregate arithmetic.

Run:  python examples/scalability_6g.py
"""

from repro import units
from repro.apps import SmartCityDeployment, all_profiles, FactoryLine
from repro.core import (
    FIVE_G_CAPABILITY,
    SIX_G_CAPABILITY,
    RequirementsAnalysis,
    render_comparison_table,
)
from repro.ran import AirInterface, CellLoadModel, ChannelModel, RadioConfig


def density_sweep() -> None:
    rows = []
    per_device = units.RATE_KBPS * 50.0     # massive-IoT duty cycle
    for name, cfg, bandwidth in (
            ("5G", RadioConfig.nr_5g(), 100e6),
            ("6G", RadioConfig.nr_6g(), 2e9)):
        channel = ChannelModel(cfg.carrier_frequency_hz,
                               antenna_gain_db=25.0,
                               bandwidth_hz=bandwidth)
        model = CellLoadModel(channel)
        air = AirInterface(cfg, channel)
        for devices in (10_000, 100_000, 1_000_000):
            rho = model.utilisation(devices, per_device)
            latency = air.mean_rtt(load=min(rho, 0.92), sinr_db=15.0) \
                if rho < 0.99 else float("inf")
            rows.append([name, devices, rho,
                         units.to_ms(latency) if latency != float("inf")
                         else float("nan")])
    print(render_comparison_table(
        ["generation", "devices/km^2", "utilisation", "air RTT (ms)"],
        rows, title="Device-density sweep (50 kbps per device)"))
    print()
    for name, model_bw in (("5G", 100e6), ("6G", 2e9)):
        channel = ChannelModel(3.5e9 if name == "5G" else 140e9,
                               antenna_gain_db=25.0, bandwidth_hz=model_bw)
        cap = CellLoadModel(channel).max_supported_users(per_device)
        print(f"{name}: max devices/km^2 at 90% utilisation: {cap:,}")


def requirements_matrix() -> None:
    rows = []
    for capability in (FIVE_G_CAPABILITY, SIX_G_CAPABILITY):
        analysis = RequirementsAnalysis(capability)
        for verdict in analysis.judge_all(all_profiles()):
            rows.append([
                verdict.generation, verdict.application,
                "ok" if verdict.latency_ok else "FAIL",
                "ok" if verdict.bandwidth_ok else "FAIL",
                "ok" if verdict.density_ok else "FAIL",
                verdict.latency_headroom,
            ])
    print()
    print(render_comparison_table(
        ["gen", "application", "latency", "bandwidth", "density",
         "headroom"],
        rows, title="Requirements analysis (Section III)"))


def aggregates() -> None:
    city = SmartCityDeployment()
    line = FactoryLine()
    print()
    print(f"Smart city: {city.intersections:,} intersections -> "
          f"{units.to_mbps(city.aggregate_bps):,.0f} Mbps aggregate; "
          f"fits 5G peak: {city.fits_in(FIVE_G_CAPABILITY.peak_rate_bps)}, "
          f"fits 6G peak: {city.fits_in(SIX_G_CAPABILITY.peak_rate_bps)}")
    print(f"Smart factory line: {units.to_tb(line.daily_volume_bits):.0f} "
          f"TB/day -> {units.to_mbps(line.mean_rate_bps):.0f} Mbps "
          f"sustained across {line.sensors:,} sensors")


def main() -> None:
    density_sweep()
    requirements_matrix()
    aggregates()


if __name__ == "__main__":
    main()
