#!/usr/bin/env python
"""The AR dodgeball use case (Section IV-A) on three networks.

Plays simulated game rounds over (a) the measured 5G field, (b) a 5G
network with edge UPF integration, and (c) a projected 6G deployment,
reporting late events, unfair hits and frame-cycle misses for each —
the quantitative version of "a player is struck by a ball even though
their physical location no longer aligns".

Run:  python examples/ar_game_latency.py
"""

import numpy as np

from repro import units
from repro.apps import ARGameSession
from repro.core import (
    InfrastructureEvaluation,
    UpfPlacementStudy,
    render_comparison_table,
)
from repro.ran import RadioConfig
from repro.sim import RngRegistry


def measured_5g_rtts() -> np.ndarray:
    """RTT samples from the reproduced drive-test campaign."""
    result = InfrastructureEvaluation(seed=42).run()
    return np.asarray(result.dataset.rtts)


def edge_5g_rtts(n: int = 2000) -> np.ndarray:
    """Sampled RTTs on a 5G network with the Sec. V-B remedies applied."""
    study = UpfPlacementStudy()
    edge = study.deployments()[0]
    rng = RngRegistry(7).stream("ar.edge")
    return np.array([study.sample_rtt_s(edge, rng) for _ in range(n)])


def projected_6g_rtts(n: int = 2000) -> np.ndarray:
    """Sampled RTTs on a 6G deployment (100 us air, on-site service)."""
    study = UpfPlacementStudy(radio_config=RadioConfig.nr_6g(),
                              air_load=0.5, server_processing_s=1.5e-3)
    edge = study.deployments()[0]
    rng = RngRegistry(7).stream("ar.6g")
    return np.array([study.sample_rtt_s(edge, rng) for _ in range(n)])


def main() -> None:
    session = ARGameSession()
    rng = RngRegistry(11)
    rows = []
    # Intra-site hand-offs between co-located edge services.
    intra_edge = np.full(64, 0.2e-3)
    for name, rtts, colocated in (
            ("measured 5G (drive test)", measured_5g_rtts(), False),
            ("5G + edge UPF (Sec. V-B)", edge_5g_rtts(), True),
            ("projected 6G", projected_6g_rtts(), True)):
        if colocated:
            # Only the controller stage crosses the access network.
            stats = session.play_round_stages(
                [rtts, intra_edge, intra_edge],
                rng.stream("round", name), throws=500)
        else:
            stats = session.play_round(rtts, rng.stream("round", name),
                                       throws=500)
        rows.append([
            name,
            units.to_ms(float(np.mean(rtts))),
            "yes" if session.playable(rtts) else "no",
            100.0 * stats.late_fraction,
            stats.unfair_hits,
            100.0 * stats.video_late_fraction,
        ])
    print(render_comparison_table(
        ["network", "mean RTT (ms)", "playable", "late events (%)",
         "unfair hits /500", "video late (%)"],
        rows,
        title="AR dodgeball (20 ms budget, 60 FPS frame cycle)"))
    print()
    print("The game needs every service round trip inside 20 ms; the")
    print("measured 5G field misses by 3-5x, edge UPF integration makes")
    print("it playable, and 6G leaves headroom for heavier scenes.")


if __name__ == "__main__":
    main()
