#!/usr/bin/env python
"""UPF integration study (Section V-B): placement tiers + SmartNIC.

Compares the service RTT through edge / regional-core / central-cloud
UPF deployments under the URLLC radio profile, demonstrates dynamic UPF
selection over a mixed flow population, and applies the SmartNIC
offload factors of [32]/[33] to the data plane.

Run:  python examples/upf_placement_study.py
"""

from repro import units
from repro.cn import offload
from repro.core import (
    DynamicUpfSelector,
    UpfPlacementStudy,
    render_comparison_table,
)


def placement_table(study: UpfPlacementStudy) -> None:
    rows = []
    for deployment in study.deployments():
        rtt = study.mean_rtt_s(deployment)
        rows.append([
            deployment.name,
            deployment.upf.tier.value,
            units.to_km(deployment.backhaul_m),
            units.to_ms(rtt),
            100.0 * study.reduction_vs_measured(units.ms(62.0))
            if deployment.name == "edge" else float("nan"),
        ])
    print(render_comparison_table(
        ["deployment", "tier", "backhaul (km)", "service RTT (ms)",
         "reduction vs 62 ms (%)"],
        rows, title="UPF placement (URLLC radio profile)"))


def dynamic_selection(study: UpfPlacementStudy) -> None:
    selector = DynamicUpfSelector(study, edge_capacity_flows=50)
    flows = [("AR gaming", 0.006)] * 30 + [("video upload", 0.500)] * 70
    anchored = {"edge": 0, "central-cloud": 0}
    for _, budget in flows:
        anchored[selector.select(budget).name] += 1
    print("\nDynamic UPF selection over 100 flows "
          "(30 AR @ 6 ms, 70 bulk @ 500 ms):")
    print(f"  edge-anchored:  {anchored['edge']}")
    print(f"  cloud-anchored: {anchored['central-cloud']}")


def smartnic(study: UpfPlacementStudy) -> None:
    host = study.deployments()[0].upf.with_load(0.4)
    nic = offload(host)
    host_lat = host.lookup_s() + host.pipeline_s
    nic_lat = nic.lookup_s() + nic.pipeline_s
    print("\nSmartNIC offload of the edge UPF (Jain et al. [32], [33]):")
    print(render_comparison_table(
        ["data plane", "throughput (Gbps)", "processing (us)",
         "mean in-UPF latency (us)"],
        [["host (kernel/PCIe)", host.throughput_bps / 1e9,
          host_lat * 1e6, host.mean_latency_s() * 1e6],
         ["SmartNIC-offloaded", nic.throughput_bps / 1e9,
          nic_lat * 1e6, nic.mean_latency_s() * 1e6]]))
    print(f"  throughput gain: {nic.throughput_bps / host.throughput_bps:.2f}x"
          f"  |  processing latency factor: {host_lat / nic_lat:.2f}x")


def main() -> None:
    study = UpfPlacementStudy()
    placement_table(study)
    dynamic_selection(study)
    smartnic(study)


if __name__ == "__main__":
    main()
