#!/usr/bin/env python
"""A second-city campaign built from the declarative scenario API.

The paper's future work: "expand the geographical scope of the
evaluation to include diverse regions".  This example used to hand-wire
~100 lines of grid, population, radio, AS-graph, and campaign objects;
the ``repro.scenarios`` spec API reduces it to *data*: take the
registered Skopje-like spec, apply overrides, and compile — the
Klagenfurt scenario is an *instance*, not a hard-coded special case.

The second city differs deliberately: a smaller 5x5 grid, a single
regional breakout in Sofia (no Frankfurt pool), flatter congestion —
and its campaign still exhibits the paper's qualitative structure
(mobile RTL far above the 20 ms budget).

Run:  python examples/second_city.py
"""

from dataclasses import replace

from repro import units
from repro.core import GapAnalysis, render_grid_heatmap
from repro.probes import CellStatistics
from repro.scenarios import build, skopje


def build_city(seed: int = 7):
    # Spec-level what-if: densify the urban core and quieten the
    # congestion field — overrides are plain dataclass edits, no
    # object wiring.
    spec = skopje()
    spec = spec.override(
        population=replace(spec.population, core_density=6000.0),
        campaign=replace(spec.campaign, extra_load_range=(0.02, 0.14)),
    )
    return build(spec, seed=seed)


def main() -> None:
    city = build_city()
    dataset = city.run_campaign(6.0)
    stats = CellStatistics(city.grid, dataset)
    wired = city.wired_baseline(count=30)
    gap = GapAnalysis().report(stats, wired)

    print(render_grid_heatmap(city.grid, stats.mean_matrix_ms(),
                              title="Skopje-like city: mean RTL"))
    print()
    print(f"samples: {len(dataset)}, measured cells: "
          f"{len(stats.measured_cells())}")
    print(f"mobile mean: {units.to_ms(gap.mobile_mean_s):.1f} ms — "
          f"the 20 ms budget is exceeded by "
          f"{gap.exceedance_percent:.0f}% here too")
    print("\nSame structure, different geography: the framework is an")
    print("instance factory, not a Klagenfurt special case.")


if __name__ == "__main__":
    main()
