#!/usr/bin/env python
"""A second-city campaign built from the library's public API.

The paper's future work: "expand the geographical scope of the
evaluation to include diverse regions".  This example builds a
from-scratch evaluation for a Skopje-like city (the co-authors'
institution) using only public components — grid, population, radio,
AS topology, campaign — demonstrating that the Klagenfurt scenario is
an *instance*, not a hard-coded special case.

The second city differs deliberately: a smaller 5x5 grid, a single
regional breakout (no Frankfurt pool), flatter congestion — and its
campaign still exhibits the paper's qualitative structure (mobile RTL
far above the 20 ms budget, border cells masked).

Run:  python examples/second_city.py
"""

import numpy as np

from repro import units
from repro.cn import SiteTier, UserPlaneFunction
from repro.core import GapAnalysis, render_grid_heatmap
from repro.geo import CellId, DriveTestRoute, GeoPoint, Grid
from repro.geo.population import RadialPopulationModel
from repro.net import (
    ASGraph,
    ASKind,
    AutonomousSystem,
    Node,
    NodeKind,
    RouteComputer,
    Topology,
)
from repro.probes import CampaignConfig, CellStatistics, DriveTestCampaign
from repro.probes.campaign import Gateway, MobilePeer
from repro.ran import ChannelModel, GNodeB, RadioConfig, RadioNetwork
from repro.sim import RngRegistry

SKOPJE = GeoPoint(41.9981, 21.4254)
SOFIA = GeoPoint(42.6977, 23.3219)     # the regional breakout city


def build_city(seed: int = 7):
    rng = RngRegistry(seed)
    grid = Grid(origin=GeoPoint(42.020, 21.395), cell_size_m=1000.0,
                cols=5, rows=5)
    population = RadialPopulationModel(
        grid.point_in_cell(CellId.from_label("C3"), 0.5, 0.5),
        core_density=5200.0, scale_m=1800.0, floor=60.0)
    traversed = [c for c in grid.cells()
                 if population.cell_density(grid, c) >= 1000.0]

    # Radio: four macro sites.
    config = RadioConfig.nr_5g()
    channel = ChannelModel(config.carrier_frequency_hz,
                           antenna_gain_db=28.0, seed=seed)
    radio = RadioNetwork(channel, [
        GNodeB(f"gnb-{label.lower()}", grid.cell_center(
            CellId.from_label(label)), config, load=0.60)
        for label in ("B2", "D2", "B4", "D4")])

    # Internet: mobile AS breaks out in Sofia; the local eyeball hangs
    # off a regional transit — the same hairpin structure, new geography.
    topo = Topology("skopje")
    asg = ASGraph()
    asg.add(AutonomousSystem(100, "mobile-mk", kind=ASKind.MOBILE_ISP))
    asg.add(AutonomousSystem(200, "balkan-transit", kind=ASKind.TRANSIT))
    asg.add(AutonomousSystem(300, "eyeball-mk", kind=ASKind.ACCESS_ISP))
    asg.set_customer_of(100, 200)
    asg.set_customer_of(300, 200)
    gw = topo.add_node(Node("gw-sofia", NodeKind.GATEWAY, SOFIA, asn=100))
    tr = topo.add_node(Node("tr-sofia", NodeKind.ROUTER,
                            GeoPoint(42.70, 23.33), asn=200))
    eye = topo.add_node(Node("eye-skp", NodeKind.ROUTER, SKOPJE, asn=300))
    probe = topo.add_node(Node("probe-skp", NodeKind.PROBE,
                               grid.cell_center(CellId.from_label("C3")),
                               asn=300))
    topo.connect(gw, tr, rate_bps=units.gbps(100.0), utilisation=0.3)
    topo.connect(tr, eye, rate_bps=units.gbps(40.0), utilisation=0.35)
    topo.connect(eye, probe, rate_bps=units.gbps(1.0), utilisation=0.2)
    routes = RouteComputer(topo, asg)

    gateway = Gateway("sofia", "gw-sofia", UserPlaneFunction(
        name="upf-sofia", location=SOFIA, tier=SiteTier.REGIONAL_CORE,
        pipeline_s=1.0e-3, rule_count=20_000, load=0.6))
    peers = {f"peer-{i}": MobilePeer(f"peer-{i}", air_load=0.62)
             for i in range(1, 9)}
    config_c = CampaignConfig(
        targets={},
        gateways={"sofia": gateway},
        default_gateway="sofia",
        peers=peers,
        default_targets=tuple(peers) + ("probe-skp",),
        cell_extra_load={c: float(rng.stream("load").uniform(0.05, 0.2))
                         for c in traversed},
    )
    route = DriveTestRoute(grid, traversed, rng.stream("route"),
                           mean_samples_per_cell=6.0, min_samples=2)
    campaign = DriveTestCampaign(grid=grid, route=route, radio=radio,
                                 routes=routes, config=config_c, rng=rng)
    return grid, campaign, routes


def main() -> None:
    grid, campaign, routes = build_city()
    dataset = campaign.run()
    stats = CellStatistics(grid, dataset)
    from repro.probes.ping import ping
    wired = ping(routes, "probe-skp", "eye-skp",
                 RngRegistry(9).stream("wired"), count=30)
    gap = GapAnalysis().report(stats, wired * 8)   # scale LAN ping to a
    # realistic wired-metro baseline for the comparison

    print(render_grid_heatmap(grid, stats.mean_matrix_ms(),
                              title="Skopje-like city: mean RTL"))
    print()
    print(f"samples: {len(dataset)}, measured cells: "
          f"{len(stats.measured_cells())}")
    print(f"mobile mean: {units.to_ms(gap.mobile_mean_s):.1f} ms — "
          f"the 20 ms budget is exceeded by "
          f"{gap.exceedance_percent:.0f}% here too")
    print("\nSame structure, different geography: the framework is an")
    print("instance factory, not a Klagenfurt special case.")


if __name__ == "__main__":
    main()
