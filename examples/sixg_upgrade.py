#!/usr/bin/env python
"""The 6G upgrade of the measured footprint (Section VI outlook).

Re-runs the complete Section IV drive test over four deployment arms
and prints per-arm Fig. 2-style heatmaps — the experiment the paper's
future work promises ("validate the proposed recommendations").

The story the numbers tell: edge breakout alone fixes the wired detour
but not the loaded 5G air interface; the 6G radio alone fixes the air
interface but still pays the Vienna hairpin; together they bring every
cell under the 20 ms AR budget, below even the wired baseline.

Run:  python examples/sixg_upgrade.py
"""

from repro import units
from repro.core import (
    GapAnalysis,
    KlagenfurtScenario,
    SixGUpgradeStudy,
    render_comparison_table,
    render_grid_heatmap,
)
from repro.ran import RadioConfig


def main() -> None:
    arms = SixGUpgradeStudy.ARMS
    rows = []
    heatmaps = {}
    for arm in arms:
        radio = RadioConfig.nr_6g() if arm.radio_config == "6g" else None
        scenario = KlagenfurtScenario(seed=42, radio_config=radio,
                                      edge_breakout=arm.edge_breakout)
        stats = scenario.statistics(scenario.run_campaign(4.0))
        gap = GapAnalysis().report(stats, scenario.wired_baseline())
        rows.append([
            arm.name,
            units.to_ms(gap.mobile_mean_s),
            units.to_ms(gap.max_cell_mean_s),
            gap.mobile_wired_factor,
            "yes" if SixGUpgradeStudy.meets_requirement(gap) else "no",
        ])
        heatmaps[arm.name] = render_grid_heatmap(
            scenario.grid, stats.mean_matrix_ms(),
            title=f"Mean RTL — {arm.name}")

    print(render_comparison_table(
        ["deployment arm", "mean RTL (ms)", "worst cell (ms)",
         "vs wired", "meets 20 ms"],
        rows, title="6G upgrade study (full campaign per arm)"))
    print()
    print(heatmaps["5G (measured)"])
    print()
    print(heatmaps["6G + edge breakout"])


if __name__ == "__main__":
    main()
