#!/usr/bin/env python
"""End-to-end latency budget decomposition per application class.

Walks each application of Section III through every tax the stack
levies — DRX wake-up, air interface, GTP goodput, protocol overhead,
haptic stability bounds — and prints where its budget goes and which
network generation can carry it.  This is the requirements analysis of
the paper executed bottom-up from the component models rather than
asserted top-down.

Run:  python examples/latency_budget_analysis.py
"""

from repro import units
from repro.apps import (
    HapticConfig,
    HapticLoop,
    IotProtocol,
    PROTOCOLS,
    ar_gaming,
    remote_surgery,
)
from repro.cn import GtpTunnel
from repro.core import render_comparison_table
from repro.ran import (
    AirInterface,
    ChannelModel,
    DrxConfig,
    DrxModel,
    RadioConfig,
)


def air_rtt(config: RadioConfig, load: float = 0.4) -> float:
    air = AirInterface(config, ChannelModel(config.carrier_frequency_hz,
                                            antenna_gain_db=25.0))
    return air.mean_rtt(load=load, sinr_db=15.0)


def budget_rows():
    """Per-application budget decomposition under three radio profiles."""
    radios = {
        "5G": (RadioConfig.nr_5g(), DrxConfig.balanced()),
        "5G URLLC": (RadioConfig.nr_5g_urllc(), DrxConfig.latency_first()),
        "6G": (RadioConfig.nr_6g(), DrxConfig.latency_first()),
    }
    apps = {
        "ar-gaming": ar_gaming().rtt_budget_s,
        "remote-surgery": remote_surgery().rtt_budget_s,
    }
    rows = []
    for app, budget in apps.items():
        for radio_name, (radio, drx) in radios.items():
            air = air_rtt(radio)
            drx_tax = DrxModel(drx).mean_added_delay_s()
            core = units.ms(1.0)      # edge UPF + backhaul allowance
            total = air + drx_tax + core
            rows.append([app, radio_name,
                         units.to_ms(budget),
                         units.to_ms(air),
                         units.to_ms(drx_tax),
                         units.to_ms(total),
                         "fits" if total <= budget else "OVER"])
    return rows


def main() -> None:
    print(render_comparison_table(
        ["application", "radio", "budget (ms)", "air RTT (ms)",
         "DRX tax (ms)", "total (ms)", "verdict"],
        budget_rows(),
        title="Latency budget decomposition (edge-terminated core)"))

    # Haptics: the stability view of the surgery budget.
    loop = HapticLoop(HapticConfig())
    print("\nHaptic stability (remote surgery):")
    print(f"  required stiffness: "
          f"{loop.config.required_stiffness_n_m:.0f} N/m")
    print(f"  max tolerable RTT: "
          f"{units.to_ms(loop.max_tolerable_rtt_s()):.1f} ms")
    for rtt_ms in (0.3, 5.0, 61.0):
        k = loop.max_stable_stiffness_n_m(units.ms(rtt_ms))
        print(f"  at {rtt_ms:5.1f} ms RTT: max stable stiffness "
              f"{k:7.0f} N/m "
              f"({'ok' if loop.stable(units.ms(rtt_ms)) else 'unstable'})")

    # GTP: what encapsulation does to IoT goodput.
    tunnel = GtpTunnel()
    print("\nGTP-U encapsulation tax:")
    for size in (64, 256, 1400):
        eff = tunnel.goodput_efficiency(size)
        print(f"  {size:5d} B packets: {100 * eff:.0f}% goodput")

    # Protocol overhead on top (Sec. III-A).
    print("\nIoT protocol delivery over a 2 ms one-way network:")
    for protocol, stack in PROTOCOLS.items():
        print(f"  {protocol.value}: "
              f"{units.to_ms(stack.delivery_latency_s(2e-3)):.1f} ms")


if __name__ == "__main__":
    main()
