#!/usr/bin/env python
"""Local peering optimization (Section V-A) end to end.

Shows the Table I trace before the fix, applies the Klagenfurt IXP
peering (plus local user-plane breakout), and traces again — the
Vienna-Prague-Bucharest-Vienna loop collapses to a metro hop and the
RTT approaches the ~1 ms the paper cites from [3].

Run:  python examples/peering_study.py
"""

from repro import units
from repro.core import KlagenfurtScenario, LocalPeeringExperiment
from repro.net import traceroute


def main() -> None:
    scenario = KlagenfurtScenario(seed=42)
    experiment = LocalPeeringExperiment(scenario)

    print("BEFORE — the measured reality (Table I):\n")
    print(experiment.baseline_trace().render_table(
        title="NETWORKING HOPS FOR LOCAL SERVICE REQUEST"))
    print()

    outcome = experiment.run()

    print("AFTER — Klagenfurt IXP peering + local breakout:\n")
    after_route = scenario.routes.route("ue-c2", "probe-uni")
    print(traceroute(scenario.topology, after_route).render_table(
        title="NETWORKING HOPS AFTER LOCAL PEERING"))
    print()
    print(f"AS path: {outcome.before_as_path} -> {outcome.after_as_path}")
    print(f"geographic route: {outcome.before_path_km:.0f} km -> "
          f"{outcome.after_path_km:.1f} km")
    print(f"RTT: {units.to_ms(outcome.before_rtt_s):.1f} ms -> "
          f"{units.to_ms(outcome.after_rtt_s):.2f} ms "
          f"({outcome.rtt_reduction_factor:.0f}x)")
    print(f"detour eliminated: {outcome.detour_eliminated}")


if __name__ == "__main__":
    main()
