#!/usr/bin/env python
"""Quickstart: run the paper's whole Section IV evaluation in one call.

Builds the Klagenfurt scenario, drives the measurement campaign through
the 33 grid cells, and prints the reproduced artifacts: Fig. 2 (mean RTL
heatmap), Fig. 3 (std-dev heatmap), Table I (hop chain), the Fig. 4
detour length, and the Section IV-C gap analysis.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import units
from repro.core import InfrastructureEvaluation


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    print(f"Building the Klagenfurt scenario and running the drive test "
          f"(seed={seed})...\n")
    result = InfrastructureEvaluation(seed=seed).run()

    print(result.figure2())
    print()
    print(result.figure3())
    print()
    print(result.table1())
    print()
    print(f"Fig. 4 geographic detour: {result.figure4_km():.0f} km "
          f"(paper: 2544 km)")
    print()
    print("--- Section IV-C gap analysis " + "-" * 30)
    print(result.gap.summary())
    print()
    print(f"samples collected: {len(result.dataset)} across "
          f"{len(result.statistics.measured_cells())} measured cells "
          f"({len(result.scenario.masked_cells)} masked)")
    print(f"wired baseline: "
          f"{units.to_ms(float(result.wired_rtts_s.mean())):.1f} ms mean")


if __name__ == "__main__":
    main()
