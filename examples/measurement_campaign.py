#!/usr/bin/env python
"""Custom measurement campaigns over the simulated infrastructure.

Demonstrates the lower-level campaign API: build the scenario, inspect
the radio layer, run a drive test with a different sampling intensity,
export the dataset to CSV, and compare two seeds — the kind of workflow
the paper's future-work section describes ("expand the geographical
scope ... refine our findings").

Run:  python examples/measurement_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import units
from repro.core import GapAnalysis, KlagenfurtScenario
from repro.geo.grid import CellId


def inspect_radio(scenario: KlagenfurtScenario) -> None:
    print("Radio layer:")
    for gnb in scenario.radio.gnbs():
        cell = scenario.grid.locate(gnb.location)
        print(f"  {gnb.name}: cell {cell.label}, "
              f"base load {gnb.load:.2f}, "
              f"{gnb.config.generation.value} "
              f"{gnb.config.numerology}")
    # Coverage check at the anchor cells.
    for label in ("C1", "C3", "B3", "E5"):
        pos = scenario.grid.cell_center(CellId.from_label(label))
        gnb, sinr = scenario.radio.serving(pos)
        print(f"  {label}: served by {gnb.name} at {sinr:.1f} dB")


def run_and_summarise(seed: int, positions: float) -> None:
    scenario = KlagenfurtScenario(seed=seed)
    dataset = scenario.run_campaign(positions)
    stats = scenario.statistics(dataset)
    gap = GapAnalysis().report(stats, scenario.wired_baseline())
    print(f"\nseed={seed}, ~{positions:.0f} positions/cell "
          f"-> {len(dataset)} samples")
    print("  " + gap.summary().replace("\n", "\n  "))


def export_csv(scenario: KlagenfurtScenario) -> None:
    dataset = scenario.run_campaign(2.0)
    path = Path(tempfile.gettempdir()) / "klagenfurt_campaign.csv"
    dataset.save_csv(path)
    print(f"\nExported {len(dataset)} samples to {path}")
    # Round-trip check
    from repro.probes import MeasurementDataset
    loaded = MeasurementDataset.load_csv(path)
    assert len(loaded) == len(dataset)
    print(f"  re-loaded OK; overall mean "
          f"{units.to_ms(float(np.mean(loaded.rtts))):.1f} ms")


def main() -> None:
    scenario = KlagenfurtScenario(seed=42)
    inspect_radio(scenario)
    run_and_summarise(seed=42, positions=6.0)
    run_and_summarise(seed=1234, positions=6.0)
    export_csv(KlagenfurtScenario(seed=42))


if __name__ == "__main__":
    main()
