"""Fig. 2 — urban mean round-trip time latency per grid cell.

Paper values reproduced (default seed):

* per-cell mean RTL ranges from **61 ms at C1** to **110 ms at C3**;
* under-sampled border cells render as **0.0**;
* the mobile mean sits ~7x above the wired baseline.

Timed work: one full drive-test campaign (33 cells, ~1700 end-to-end
RTT measurements through radio + core + policy-routed internet).
"""

import pytest

from repro import units
from repro.core import KlagenfurtScenario


def test_fig2_campaign(benchmark, evaluation):
    def run_campaign():
        scenario = KlagenfurtScenario(seed=42)
        return scenario.statistics(scenario.run_campaign(2.0))

    stats_small = benchmark(run_campaign)
    assert stats_small.measured_cells()   # the timed campaign works

    # Assertions on the full-size session campaign.
    stats = evaluation.statistics
    low = stats.min_mean_cell()
    high = stats.max_mean_cell()
    assert low.cell.label == "C1"
    assert high.cell.label == "C3"
    assert low.mean_s == pytest.approx(units.ms(61.0), rel=0.05)
    assert high.mean_s == pytest.approx(units.ms(110.0), rel=0.05)
    for cell in evaluation.scenario.masked_cells:
        assert stats.aggregate(cell).masked

    print("\n" + evaluation.figure2())
    print(f"\npaper:    61 ms (C1) .. 110 ms (C3)")
    print(f"measured: {units.to_ms(low.mean_s):.0f} ms "
          f"({low.cell.label}) .. {units.to_ms(high.mean_s):.0f} ms "
          f"({high.cell.label})")
