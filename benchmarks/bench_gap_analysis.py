"""Section IV-C — the headline gap numbers.

Paper claims reproduced:

* mobile mean RTL exceeds the 20 ms AR requirement by **~270 %**;
* mobile mean RTL is **~7x** the wired baseline;
* the wired baseline itself sits in the 7-12 ms band of [3];
* every measured cell exceeds the requirement (the gap is structural,
  not a bad-cell artifact).

Timed work: the gap-analysis derivation.
"""

import numpy as np
import pytest

from repro import units
from repro.core import GapAnalysis


def test_gap_analysis(benchmark, evaluation):
    def analyse():
        return GapAnalysis().report(evaluation.statistics,
                                    evaluation.wired_rtts_s)

    report = benchmark(analyse)

    assert report.exceedance_percent == pytest.approx(270.0, abs=20.0)
    assert report.mobile_wired_factor == pytest.approx(7.0, abs=0.8)
    wired_ms = units.to_ms(report.wired_mean_s)
    assert 7.0 < wired_ms < 12.0

    print("\n" + report.summary())
    print(f"\npaper:    ~270% exceedance, factor of seven vs wired")
    print(f"measured: {report.exceedance_percent:.0f}% exceedance, "
          f"{report.mobile_wired_factor:.1f}x vs wired")


def test_every_cell_exceeds_requirement(evaluation):
    budget = units.ms(20.0)
    for agg in evaluation.statistics.measured_cells():
        assert agg.mean_s > budget


def test_wired_baseline_bench(benchmark, scenario):
    rtts = benchmark(scenario.wired_baseline, 50)
    assert 7.0 < float(np.mean(rtts)) * 1e3 < 12.0
