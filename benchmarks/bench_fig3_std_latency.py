"""Fig. 3 — per-cell standard deviation of the RTL.

Paper values reproduced (default seed):

* sigma spans **~1.8 ms at B3** (Frankfurt-breakout cell: long but
  deterministic path) to **~46.4 ms at E5** (coverage boundary:
  handover interruptions inside measurement windows);
* "large variance highlights significant inter-cell and intra-cell
  latency differences".

Timed work: the per-cell aggregation over the campaign dataset.
"""

import pytest

from repro import units
from repro.probes import CellStatistics


def test_fig3_std_aggregation(benchmark, evaluation):
    def aggregate():
        return CellStatistics(evaluation.scenario.grid, evaluation.dataset)

    stats = benchmark(aggregate)

    low = stats.min_std_cell()
    high = stats.max_std_cell()
    assert low.cell.label == "B3"
    assert high.cell.label == "E5"
    assert low.std_s < units.ms(4.0)          # paper: 1.8 ms
    assert units.ms(38.0) < high.std_s < units.ms(55.0)  # paper: 46.4 ms

    # Inter-cell spread: the std-dev field itself varies by >10x.
    assert high.std_s / low.std_s > 10.0

    print("\n" + evaluation.figure3())
    print(f"\npaper:    1.8 ms (B3) .. 46.4 ms (E5)")
    print(f"measured: {units.to_ms(low.std_s):.1f} ms ({low.cell.label}) "
          f".. {units.to_ms(high.std_s):.1f} ms ({high.cell.label})")
