"""Cross-fleet comparison — alignment cost at fleet scale.

Two questions: what does ``repro compare`` add on top of loading the
fleets (timed over a real pair of small on-disk fleets), and how does
content-identity alignment scale when the record sets grow to
campaign size (timed over synthetic thousand-run sets that reuse one
evaluated record, so the benchmark measures alignment, not
evaluation)?  The printed rates are the headline numbers for "compare
reports are free relative to the sweeps they compare".

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_compare.py -s
"""

import time

from repro.fleet import (
    RecordSet,
    RunRecord,
    SweepAxis,
    SweepSpec,
    compare_paths,
    compare_record_sets,
    run_sweep,
)
from repro.scenarios import klagenfurt

AXIS = "campaign.handover_interruption_s"

#: Synthetic set size: seeds per variant x variants.
SEEDS = 250
VARIANTS = 8


def make_sweep(values) -> SweepSpec:
    return SweepSpec(bases=(klagenfurt(),),
                     axes=(SweepAxis(AXIS, tuple(values)),),
                     seeds=(42,), density=2.0)


def synthetic_set(label: str, template: RunRecord, *,
                  scale: float = 1.0) -> RecordSet:
    """``SEEDS x VARIANTS`` records cloned from one real evaluation:
    distinct content identities, optionally drifted metrics."""
    records = []
    for variant_index in range(VARIANTS):
        for seed in range(SEEDS):
            data = template.to_dict()
            data["run_id"] = f"syn-v{variant_index:03d}-s{seed}"
            data["seed"] = seed
            data["variant"] = [[AXIS, 0.01 * (variant_index + 1)]]
            data["spec_key"] = f"{variant_index:032x}{seed:032x}"
            data["summary"]["gap"]["mobile_mean_s"] *= scale
            records.append(RunRecord.from_dict(data))
    return RecordSet(label, tuple(records))


def test_compare_two_real_fleets(tmp_path):
    out_a, out_b = tmp_path / "a", tmp_path / "b"
    cache = tmp_path / "cache"

    started = time.perf_counter()
    run_sweep(make_sweep((30e-3, 60e-3)), cache=cache, out=out_a)
    run_sweep(make_sweep((30e-3, 90e-3)), cache=cache, out=out_b)
    sweeps_s = time.perf_counter() - started

    started = time.perf_counter()
    comparison = compare_paths([out_a, out_b])
    compare_s = time.perf_counter() - started

    assert len(comparison.deltas) == 1
    assert len(comparison.added) == len(comparison.removed) == 1
    print(f"\n2x2-run fleets: sweeps {sweeps_s:.2f} s, compare "
          f"(load + align + delta) {compare_s * 1e3:.1f} ms "
          f"({sweeps_s / compare_s:.0f}x cheaper than the sweeps)")


def test_alignment_throughput_at_campaign_scale(tmp_path):
    template = run_sweep(make_sweep((30e-3,)), out=None).records[0]
    baseline = synthetic_set("before", template)
    candidate = synthetic_set("after", template, scale=1.02)
    total = len(baseline.records) + len(candidate.records)

    started = time.perf_counter()
    comparison = compare_record_sets(baseline, [candidate])
    align_s = time.perf_counter() - started

    assert len(comparison.deltas) == VARIANTS
    assert comparison.added == () and comparison.removed == ()
    assert comparison.paired_runs == SEEDS * VARIANTS
    for delta in comparison.deltas:
        by_name = {m.metric: m for m in delta.metrics}
        assert abs(by_name["mobile_mean_ms"].pct - 2.0) < 1e-6
    print(f"{total} records ({VARIANTS} variants x {SEEDS} seeds x 2 "
          f"fleets) aligned in {align_s * 1e3:.1f} ms -> "
          f"{total / align_s:,.0f} records/s")
