"""Measurement-kernel benchmark — machine-readable perf tracking.

Times one cold ``InfrastructureEvaluation(seed=42,
scenario="klagenfurt").run()``, the warm-repeat distribution, the
kernel stage breakdown, and the scalar reference pipeline, then writes
``BENCH_campaign.json`` at the repo root so the performance trajectory
is tracked in-repo.  CI's ``bench-smoke`` job re-runs this and fails
when the median single-eval wall time regresses past 2x the committed
baseline.

Run directly::

    PYTHONPATH=src python benchmarks/bench_campaign.py
    PYTHONPATH=src python benchmarks/bench_campaign.py --check BENCH_campaign.json

or via pytest (prints, writes nothing)::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign.py -s
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_campaign.json"

SCENARIO = "klagenfurt"
SEED = 42
DENSITY = 6.0
#: CI fails when median wall exceeds baseline by this factor.
REGRESSION_FACTOR = 2.0


def measure(repeats: int = 5) -> dict:
    from repro.core.evaluation import InfrastructureEvaluation
    from repro.probes.kernel import CampaignKernel

    ev = InfrastructureEvaluation(seed=SEED, scenario=SCENARIO,
                                  mean_positions_per_cell=DENSITY)

    started = time.perf_counter()
    result = ev.run()
    cold_wall_s = time.perf_counter() - started
    sample_count = len(result.dataset)

    warm = []
    for _ in range(repeats):
        started = time.perf_counter()
        ev.run()
        warm.append(time.perf_counter() - started)
    median_wall_s = statistics.median(warm)

    # Kernel stage breakdown on a fresh campaign.
    scenario = ev.build_scenario()
    kernel = CampaignKernel(scenario.campaign(DENSITY))
    kernel.run()

    # Scalar reference pipeline (the pre-kernel hot path).
    scenario = ev.build_scenario()
    campaign = scenario.campaign(DENSITY)
    started = time.perf_counter()
    campaign.run(kernel=False)
    scalar_campaign_s = time.perf_counter() - started

    return {
        "schema": 1,
        "scenario": SCENARIO,
        "seed": SEED,
        "density": DENSITY,
        "sample_count": sample_count,
        "single_eval": {
            "cold_wall_s": round(cold_wall_s, 6),
            "median_wall_s": round(median_wall_s, 6),
            "best_wall_s": round(min(warm), 6),
            "repeats": repeats,
        },
        "measurements_per_sec": round(sample_count / median_wall_s, 1),
        "kernel_stages_s": {name: round(value, 6)
                            for name, value in
                            kernel.stage_seconds.items()},
        "scalar_reference": {
            "campaign_wall_s": round(scalar_campaign_s, 6),
        },
        "kernel_speedup_campaign": round(
            scalar_campaign_s / sum(kernel.stage_seconds.values()), 2),
    }


def check_regression(results: dict, baseline_path: Path) -> list[str]:
    """Gate failures of ``results`` against a committed baseline.

    The baseline was recorded on a different machine, so raw seconds
    don't compare: a busy CI runner is easily 2-3x slower across the
    board.  The scalar reference pipeline runs in the same process on
    the same inputs, so its ratio to the baseline's scalar time is a
    clean estimate of machine speed — the gate scales the committed
    median by it before applying the 2x regression factor.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    machine_scale = (results["scalar_reference"]["campaign_wall_s"]
                     / baseline["scalar_reference"]["campaign_wall_s"])
    scaled_baseline = \
        baseline["single_eval"]["median_wall_s"] * machine_scale
    limit = scaled_baseline * REGRESSION_FACTOR
    measured = results["single_eval"]["median_wall_s"]
    if measured > limit:
        failures.append(
            f"single-eval median wall {measured:.4f}s exceeds "
            f"{REGRESSION_FACTOR}x the committed baseline "
            f"({baseline['single_eval']['median_wall_s']:.4f}s, scaled "
            f"to {scaled_baseline:.4f}s for this machine's speed)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON results")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate against (exit 1 on "
                             f"a >{REGRESSION_FACTOR}x regression)")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    results = measure(repeats=args.repeats)
    print(json.dumps(results, indent=2))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}", file=sys.stderr)

    if args.check is not None:
        failures = check_regression(results, args.check)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok", file=sys.stderr)
    return 0


# -- pytest entry point ----------------------------------------------------

def test_kernel_beats_scalar_reference():
    """The kernel runs the campaign at least 3x faster than scalar."""
    results = measure(repeats=3)
    print("\n" + json.dumps(results, indent=2))
    assert results["kernel_speedup_campaign"] >= 3.0


if __name__ == "__main__":
    sys.exit(main())
