"""Result cache — cold vs. warm execution of the same fleet.

Times the 8-variant x 4-seed fleet (both registered cities x four
handover-interruption settings) twice against one content-addressed
cache: the cold pass computes and stores all 32 records, the warm pass
must serve every one of them from disk without a single evaluation,
bit-identically.  The printed speedup is the headline number for
"never pay for the same (spec, seed, density) twice".

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_cache.py -s
"""

import os
import time

from repro.fleet import SweepAxis, SweepSpec, run_sweep
from repro.scenarios import klagenfurt, skopje

#: Worker count; ``os.cpu_count()`` under-reports in containers with a
#: cgroup CPU quota, so default to the sweep's natural width of 4.
JOBS = int(os.environ.get("FLEET_BENCH_JOBS", "4"))


def make_sweep() -> SweepSpec:
    """8 variants x 4 seeds at light sampling density: 32 runs."""
    return SweepSpec(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis("campaign.handover_interruption_s",
                        (30e-3, 45e-3, 60e-3, 75e-3)),),
        seeds=(42, 43, 44, 45),
        density=2.0,
    )


def test_cold_vs_warm_cache_speedup(tmp_path):
    sweep = make_sweep()
    assert sweep.run_count == 32
    cache = tmp_path / "cache"

    started = time.perf_counter()
    cold = run_sweep(sweep, jobs=JOBS, cache=cache)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_sweep(sweep, jobs=JOBS, cache=cache)
    warm_s = time.perf_counter() - started

    # The cache contract: the warm pass computes nothing, and what it
    # serves is bit-identical to what the cold pass computed.
    assert cold.cached_count == 0
    assert warm.cached_count == len(warm) == 32
    assert [r.to_dict() for r in warm.records] == \
        [r.to_dict() for r in cold.records]

    print(f"\n32-run fleet: cold {cold_s:.2f} s, warm (fully cached) "
          f"{warm_s:.2f} s -> speedup {cold_s / warm_s:.1f}x")


def test_warm_pass_beats_recompute_by_a_wide_margin(tmp_path):
    """A cache hit costs file IO, not a drive-test campaign."""
    sweep = make_sweep()
    cache = tmp_path / "cache"
    cold = run_sweep(sweep, jobs=JOBS, cache=cache)

    started = time.perf_counter()
    warm = run_sweep(sweep, cache=cache)      # serial: hits don't need workers
    warm_s = time.perf_counter() - started

    busy = sum(cold.run_wall_s)
    assert warm.cached_count == 32
    # Serving 32 records from cache must be far cheaper than the
    # cumulative compute the cold pass spent producing them.
    assert warm_s < busy / 2
    print(f"\nwarm serial pass {warm_s:.3f} s vs {busy:.2f} s of "
          f"cold compute ({busy / warm_s:.0f}x)")
