"""Cross-validation bench: analytic latency model vs packet-level DES.

The campaign samples per-packet latency from analytic queueing
distributions; this bench replays the scenario's wired probe path as an
*actual packet simulation* on the discrete-event kernel and checks the
two agree — the strongest internal-consistency check the reproduction
has.

Timed work: a 20k-packet DES run over the Table I path.
"""

import numpy as np
import pytest

from repro import units
from repro.net.dessim import PacketNetwork
from repro.sim import RngRegistry, Simulator


def test_des_agrees_with_analytic_on_probe_path(benchmark, scenario):
    path = list(scenario.routes.route("gw-vie", "probe-uni").path)
    size = 64.0 * 8.0

    def run_des():
        sim = Simulator()
        net = PacketNetwork(sim, scenario.topology)
        rng = RngRegistry(3).stream("des.bench")
        # Paced probes (no self-queueing): one packet per millisecond.
        def source():
            for _ in range(2_000):
                yield sim.timeout(1e-3)
                net.send(path, size)
        sim.process(source())
        sim.run()
        return net.delivered

    delivered = benchmark.pedantic(run_des, rounds=1, iterations=1)

    des_mean = delivered.summary().mean
    analytic = scenario.topology.path_latency(path, size).total
    # The analytic model adds the *mean* M/M/1 wait on loaded links;
    # paced DES probes see the empty-queue path.  They agree within the
    # total queueing allowance.
    queueing = sum(scenario.topology.link(a, b).mean_queueing_delay(size)
                   for a, b in zip(path, path[1:]))
    assert des_mean == pytest.approx(analytic - queueing, rel=1e-6)
    print(f"\nDES one-way {units.to_ms(des_mean):.3f} ms vs analytic "
          f"{units.to_ms(analytic):.3f} ms "
          f"(of which queueing allowance "
          f"{units.to_ms(queueing):.3f} ms)")


def test_des_queueing_matches_analytic_under_load(benchmark):
    """Loaded bottleneck: DES waiting converges to the M/M/1 mean used
    by the analytic sampler."""
    from repro.geo import GeoPoint
    from repro.net import Node, NodeKind, Topology
    from repro.net.queueing import mm1_wait

    topo = Topology("bottleneck")
    a = topo.add_node(Node("a", NodeKind.ROUTER, GeoPoint(46.6, 14.3),
                           asn=1))
    b = topo.add_node(Node("b", NodeKind.ROUTER, GeoPoint(46.7, 14.3),
                           asn=1))
    link = topo.connect(a, b, rate_bps=units.mbps(50.0))
    mean_size = units.bytes_(1500)
    service = link.transmission_delay(mean_size)
    rho = 0.75

    def run_loaded_des():
        sim = Simulator()
        net = PacketNetwork(sim, topo)
        rng = RngRegistry(7).stream("des.load")
        rate = rho / service

        def source():
            for _ in range(20_000):
                yield sim.timeout(float(rng.exponential(1.0 / rate)))
                net.send(["a", "b"], max(
                    float(rng.exponential(mean_size)), 64.0))

        sim.process(source())
        sim.run()
        return net.delivered

    delivered = benchmark.pedantic(run_loaded_des, rounds=1, iterations=1)
    prop = link.propagation_delay()
    measured = delivered.summary().mean - prop
    expected = mm1_wait(rho, service) + service
    assert measured == pytest.approx(expected, rel=0.12)
    print(f"\nDES wait+service {measured * 1e3:.2f} ms vs M/M/1 "
          f"{expected * 1e3:.2f} ms at rho={rho}")
