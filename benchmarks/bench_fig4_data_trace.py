"""Fig. 4 — the geographic data trace of the local service request.

Paper values reproduced:

* the route leaves Austria: Vienna -> Prague -> Bucharest -> Vienna;
* total geographic loop of **~2544 km** for endpoints < 5 km apart;
* the detour is a *policy* artifact: with Gao-Rexford routing disabled
  (pure shortest-latency paths over the same physical links), the
  loop shrinks — quantifying how much of the path is economics, not
  physics.

Timed work: the geographic route derivation from the trace.
"""

import networkx as nx
import pytest

from repro import units


def test_fig4_detour_distance(benchmark, scenario):
    km = benchmark(scenario.detour_route_km)
    assert km == pytest.approx(2544.0, rel=0.02)
    print(f"\npaper:    2544 km (Klagenfurt-Vienna-Prague-Bucharest-Vienna)")
    print(f"measured: {km:.0f} km")


def test_fig4_route_crosses_three_countries(scenario):
    trace = scenario.reference_trace()
    lats = [scenario.topology.node(h.node_name).location.lat
            for h in trace.hops]
    lons = [scenario.topology.node(h.node_name).location.lon
            for h in trace.hops]
    assert max(lats) > 49.5      # Prague
    assert max(lons) > 25.0      # Bucharest


def test_fig4_policy_vs_shortest_path_ablation(scenario):
    """The detour exists only under policy routing: the latency-shortest
    path over the same graph never leaves the Vienna corridor."""
    topo = scenario.topology
    policy_path = list(scenario.routes.route("ue-c2", "probe-uni").path)
    shortest = nx.shortest_path(topo._graph, "ue-c2", "probe-uni",
                                weight="weight")
    policy_km = units.to_km(topo.geographic_path_length(policy_path))
    shortest_km = units.to_km(topo.geographic_path_length(shortest))
    # The physical graph offers no Klagenfurt shortcut (that is the
    # point of Sec. V-A), but pure shortest-path still avoids the
    # Bucharest loop.
    assert shortest_km < policy_km
    print(f"\npolicy-routed path: {policy_km:.0f} km of cable; "
          f"latency-shortest path: {shortest_km:.0f} km")
