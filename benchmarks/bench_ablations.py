"""Ablations of the DESIGN.md design choices.

Quantifies how much each modelled mechanism contributes to the
reproduced phenomenology:

1. **Policy routing** — Gao-Rexford vs pure shortest path: the Fig. 4
   detour is economics, not topology.
2. **RAN bufferbloat** — the buffer-service quantum vs slot-level
   queueing: where the per-cell latency spread comes from.
3. **Gateway breakout** — Vienna vs Frankfurt CGNAT assignment: the
   deterministic mean shift behind B3.
4. **Handover interruptions** — with/without: the heavy tail behind
   E5's sigma.
5. **QoS rule cache** — lookup latency vs rule-table size.
"""

import numpy as np
import pytest

from repro import units
from repro.cn import ContextAwareRuleEngine, QosFlow, UserPlaneFunction
from repro.geo import VIENNA
from repro.geo.grid import CellId
from repro.ran import AirInterface, ChannelModel, RadioConfig
from repro.sim import RngRegistry


def test_ablation_policy_routing(scenario):
    """Detour km under policy routing vs latency-shortest paths."""
    import networkx as nx
    topo = scenario.topology
    policy = list(scenario.routes.route("gw-vie", "probe-uni").path)
    shortest = nx.shortest_path(topo._graph, "gw-vie", "probe-uni",
                                weight="weight")
    policy_km = units.to_km(topo.geographic_path_length(policy))
    shortest_km = units.to_km(topo.geographic_path_length(shortest))
    assert policy_km > 2.0 * shortest_km
    print(f"\npolicy {policy_km:.0f} km vs shortest-path "
          f"{shortest_km:.0f} km ({policy_km / shortest_km:.1f}x)")


def test_ablation_ran_bufferbloat(benchmark):
    """Air RTT at drive-test load, with and without the buffer term."""
    bloated = RadioConfig.nr_5g()
    slotted = RadioConfig.nr_5g(buffer_service_s=bloated.slot_s)
    channel = ChannelModel(bloated.carrier_frequency_hz,
                           antenna_gain_db=25.0)

    def mean_rtts():
        return (AirInterface(bloated, channel).mean_rtt(load=0.8),
                AirInterface(slotted, channel).mean_rtt(load=0.8))

    with_buffer, without = benchmark(mean_rtts)
    # The buffer term carries the loaded-cell latency: without it a
    # loaded cell looks almost idle.
    assert with_buffer > 3.0 * without
    print(f"\nair RTT at 80% load: {units.to_ms(with_buffer):.1f} ms "
          f"with bufferbloat vs {units.to_ms(without):.1f} ms slot-level")


def test_ablation_gateway_breakout(scenario):
    """B3's Frankfurt breakout vs the default Vienna gateway."""
    campaign = scenario.campaign(2.0)
    b3 = CellId.from_label("B3")
    position = scenario.grid.cell_center(b3)
    frankfurt = np.mean([campaign.sample_rtt(position, b3, "probe-uni")
                         for _ in range(40)])
    # Re-assign B3 to the Vienna gateway and re-measure.
    object.__setattr__  # (config is a plain dataclass; mutate the map)
    campaign.config.gateway_by_cell = {}
    vienna = np.mean([campaign.sample_rtt(position, b3, "probe-uni")
                      for _ in range(40)])
    # Frankfurt adds deterministic kilometres; Vienna adds CGNAT
    # queueing.  The means differ by the tunnel propagation minus the
    # CGNAT difference.
    assert frankfurt != pytest.approx(vienna, rel=0.02)
    print(f"\nB3 -> probe: via Frankfurt {frankfurt * 1e3:.1f} ms, "
          f"via Vienna {vienna * 1e3:.1f} ms")


def test_ablation_handover_interruptions(scenario):
    """E5's sigma with and without handover interruptions."""
    campaign = scenario.campaign(2.0)
    e5 = CellId.from_label("E5")
    position = scenario.grid.cell_center(e5)
    with_ho = np.array([campaign.sample_rtt(position, e5, "peer-1")
                        for _ in range(200)])
    saved = dict(campaign.config.handover_prob)
    campaign.config.handover_prob = {}
    without_ho = np.array([campaign.sample_rtt(position, e5, "peer-1")
                           for _ in range(200)])
    campaign.config.handover_prob = saved
    assert with_ho.std(ddof=1) > 1.5 * without_ho.std(ddof=1)
    print(f"\nE5 sigma: {with_ho.std(ddof=1) * 1e3:.1f} ms with "
          f"handovers vs {without_ho.std(ddof=1) * 1e3:.1f} ms without")


def test_ablation_qos_cache_vs_table_size(benchmark):
    """Lookup latency growth with rule count, cached vs scanned."""
    def measure():
        out = {}
        for rules in (1_000, 10_000, 100_000):
            upf = UserPlaneFunction(name="u", location=VIENNA,
                                    rule_count=rules)
            engine = ContextAwareRuleEngine(upf, capacity=8)
            flow = QosFlow("f", "ue", 80)
            miss = engine.lookup(flow)    # cold
            hit = engine.lookup(flow)     # cached
            out[rules] = (miss, hit)
        return out

    results = benchmark(measure)
    misses = [results[r][0] for r in sorted(results)]
    hits = [results[r][1] for r in sorted(results)]
    assert misses[-1] > 50 * misses[0]      # scan cost grows with table
    assert hits[0] == hits[-1]              # cache cost does not
