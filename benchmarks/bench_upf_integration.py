"""Section V-B — UPF integration and placement.

Paper claims reproduced:

* edge UPF integration achieves **5-6.2 ms** service RTT (Barrachina
  [30], Goshi [31]);
* that is a **~90 % reduction** against the measured >62 ms through
  the regional core;
* placement ordering: edge < regional core < central cloud;
* dynamic UPF selection keeps latency-critical flows at the edge and
  offloads bulk to the cloud.

Timed work: the three-tier placement comparison.
"""

import pytest

from repro import units
from repro.core import DynamicUpfSelector, UpfPlacementStudy


def test_upf_placement_tiers(benchmark):
    study = UpfPlacementStudy()
    rtts = benchmark(study.compare)

    assert units.ms(5.0) <= rtts["edge"] <= units.ms(6.2)
    assert rtts["edge"] < rtts["regional-core"] < rtts["central-cloud"]
    reduction = study.reduction_vs_measured(units.ms(62.0))
    assert reduction >= 0.90

    print(f"\npaper:    edge UPF 5-6.2 ms; up to 90% below the measured "
          f">62 ms")
    print("measured: "
          + ", ".join(f"{k} {units.to_ms(v):.2f} ms"
                      for k, v in rtts.items())
          + f"; reduction {reduction * 100:.0f}%")


def test_dynamic_upf_selection(benchmark):
    def run_selection():
        study = UpfPlacementStudy()
        selector = DynamicUpfSelector(study, edge_capacity_flows=50)
        anchored = {"edge": 0, "central-cloud": 0}
        # Per-stage AR budget: the 20 ms motion-to-photon budget
        # spread over a three-stage pipeline plus processing
        # leaves ~6 ms per service round trip.
        budgets = [0.006] * 30 + [0.500] * 70
        for budget in budgets:
            anchored[selector.select(budget).name] += 1
        return anchored

    anchored = benchmark(run_selection)
    assert anchored["edge"] == 30          # every AR flow at the edge
    assert anchored["central-cloud"] == 70  # all bulk offloaded
