"""Section VI outlook — the future-work studies as benches.

Not figures of the paper, but the validations its conclusion promises:

* the full campaign re-run over upgrade arms — only **6G + edge
  breakout** brings every cell under the 20 ms AR budget and undercuts
  the wired baseline ("competitiveness with wired networks");
* federated learning at the edge — the bottleneck shifts from network
  (5G: >70 % of round time) to compute (6G edge: <20 %);
* intelligent slicing — a predictive scaler breaches the latency-safe
  utilisation bound less often than a reactive one on diurnal load;
* energy-efficient management — the 6G site model cuts fleet energy
  while *reducing* the sleep latency penalty.
"""

import pytest

from repro import units
from repro.core import (
    FederatedEdgeStudy,
    PredictiveSlicingStudy,
    SixGUpgradeStudy,
)
from repro.ran import EnergyModel, SitePowerModel


def test_6g_upgrade_arms(benchmark):
    study = SixGUpgradeStudy(seed=42, mean_positions_per_cell=2.0)

    def run_all_arms():
        return study.run()

    reports = benchmark.pedantic(run_all_arms, rounds=1, iterations=1)

    baseline = reports["5G (measured)"]
    upgraded = reports["6G + edge breakout"]
    assert not SixGUpgradeStudy.meets_requirement(baseline)
    assert SixGUpgradeStudy.meets_requirement(upgraded)
    assert upgraded.mobile_mean_s < baseline.mobile_mean_s / 20.0
    assert upgraded.mobile_mean_s < upgraded.wired_mean_s

    print("\ncampaign mean RTL per upgrade arm:")
    for name, report in reports.items():
        meets = "meets 20 ms" if SixGUpgradeStudy.meets_requirement(
            report) else "misses 20 ms"
        print(f"  {name}: {units.to_ms(report.mobile_mean_s):.1f} ms "
              f"({meets})")


def test_federated_learning_deployments(benchmark):
    study = FederatedEdgeStudy()
    results = benchmark(study.compare)

    assert results["5G + cloud aggregation"]["network_share"] > 0.7
    assert results["6G + edge aggregation"]["network_share"] < 0.2

    print("\nfederated round times:")
    for name, metrics in results.items():
        print(f"  {name}: {metrics['round_time_s']:.1f} s/round, "
              f"{metrics['rounds_per_hour']:.0f}/h, "
              f"network share {100 * metrics['network_share']:.0f}%")


def test_predictive_slicing(benchmark):
    study = PredictiveSlicingStudy()
    trace = study.diurnal_demand(units.gbps(6.0))

    breaches = benchmark(study.run, trace)
    assert breaches["predictive"] < breaches["reactive"]
    print(f"\nslice-bound breaches over one day: "
          f"reactive {breaches['reactive']}, "
          f"predictive {breaches['predictive']}")


def test_energy_efficiency(benchmark):
    def fleet_comparison():
        out = {}
        for name, site in (("5G", SitePowerModel.macro_5g()),
                           ("6G", SitePowerModel.macro_6g())):
            model = EnergyModel(site, n_sites=6)
            out[name] = {
                "daily_kwh": model.daily_energy_kwh(),
                "sleep_saving": model.sleep_saving_fraction(),
                "wake_penalty_s": site.wakeup_s,
            }
        return out

    results = benchmark(fleet_comparison)
    assert results["6G"]["daily_kwh"] < 0.75 * results["5G"]["daily_kwh"]
    assert results["6G"]["wake_penalty_s"] < \
        results["5G"]["wake_penalty_s"] / 10.0
    print("\nfleet energy (6 macro sites, diurnal urban profile):")
    for name, metrics in results.items():
        print(f"  {name}: {metrics['daily_kwh']:.0f} kWh/day, "
              f"sleep saves {100 * metrics['sleep_saving']:.0f}%, "
              f"wake penalty {metrics['wake_penalty_s'] * 1e3:.0f} ms")
