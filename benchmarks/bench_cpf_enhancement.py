"""Section V-C — control-plane functionality enhancement.

Paper claims reproduced:

* consolidating session + mobility management at the Near-RT RIC
  shortens PDU session establishment and service requests (the N2 and
  N4 legs shed their Vienna round trips);
* registration is a wash under the *hybrid* deployment (subscriber
  data stays central) — the paper's argument for hybrid control;
* the context-aware QoS rule engine ([32]) reduces PDR/QER lookup and
  update latencies.

Timed work: the full procedure comparison; one QoS-cache run.
"""

import pytest

from repro import units
from repro.core import CpfEnhancementStudy, QosCacheStudy


def test_cpf_procedures(benchmark):
    def compare():
        return CpfEnhancementStudy().compare_all()

    comparisons = benchmark(compare)

    by_name = {c.procedure: c for c in comparisons}
    pdu = by_name["pdu-session-establishment"]
    service = by_name["service-request"]
    assert pdu.improvement_s > units.ms(4.0)
    assert service.improvement_fraction > 0.15
    # hybrid: registration does not regress
    assert by_name["registration"].improvement_s >= -1e-12

    print("\nprocedure latencies (centralised -> RIC-consolidated):")
    for c in comparisons:
        print(f"  {c.procedure}: {units.to_ms(c.centralised_s):.1f} ms -> "
              f"{units.to_ms(c.ric_consolidated_s):.1f} ms "
              f"({100 * c.improvement_fraction:.0f}%)")


def test_qos_rule_cache(benchmark):
    def run_cache_study():
        return QosCacheStudy().run()

    result = benchmark(run_cache_study)
    # On a churn-heavy mix (512 bulk flows over a 64-slot cache)
    # the bulk misses bound the gain; the critical flows inside
    # the cache see ~1000x.
    assert result["context_aware_s"] < result["linear_scan_s"] / 2.0
    assert result["hit_rate"] > 0.5
    print(f"\nPDR/QER lookup: linear scan "
          f"{result['linear_scan_s'] * 1e6:.1f} us vs context-aware "
          f"{result['context_aware_s'] * 1e6:.2f} us "
          f"(hit rate {100 * result['hit_rate']:.0f}%)")
