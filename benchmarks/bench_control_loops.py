"""Sections II-A / III-B — control loops behind the latency budgets.

The paper asserts budgets (surgery needs ~5 ms, vehicles need 10 ms-
class coordination); these benches derive them from the underlying
control problems:

* **haptics** — the passivity bound: displayable stiffness falls with
  RTT; the surgery-grade stiffness survives a ~5 ms loop, not the
  measured 61+ ms;
* **platooning** — string stability: the minimum safe headway grows
  with latency, so lane capacity falls; 6G-class latency buys a
  double-digit capacity gain;
* **RRC cold start** — the state-machine tax the first packet of a
  burst pays, and why AR traffic must keep the connection warm.
"""

import numpy as np
import pytest

from repro import units
from repro.apps import HapticConfig, HapticLoop, PlatoonConfig, PlatoonModel
from repro.ran import RadioConfig, RrcState, RrcStateMachine
from repro.sim import RngRegistry


def test_haptic_stability_boundary(benchmark):
    loop = HapticLoop(HapticConfig())

    def boundary():
        return [(rtt, loop.max_stable_stiffness_n_m(rtt))
                for rtt in np.linspace(0.0, 0.08, 33)]

    curve = benchmark(boundary)
    stiffness = [k for _, k in curve]
    assert all(a > b for a, b in zip(stiffness, stiffness[1:]))
    assert loop.stable(units.ms(5.0))
    assert not loop.stable(units.ms(61.0))
    print(f"\nsurgery-grade stiffness "
          f"({loop.config.required_stiffness_n_m:.0f} N/m) tolerates "
          f"{units.to_ms(loop.max_tolerable_rtt_s()):.1f} ms RTT; the "
          f"measured field (61-110 ms) is unstable")


def test_platoon_capacity_vs_latency(benchmark):
    platoon = PlatoonModel(PlatoonConfig())

    def capacity_curve():
        return {rtt_ms: platoon.lane_capacity_vph(units.ms(rtt_ms))
                for rtt_ms in (0.3, 1.0, 5.0, 10.0, 61.0, 110.0)}

    curve = benchmark(capacity_curve)
    values = list(curve.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    gain = curve[1.0] / curve[61.0]
    assert gain > 1.05
    print("\nlane capacity at string-stable headway:")
    for rtt_ms, vph in curve.items():
        print(f"  {rtt_ms:6.1f} ms RTT: {vph:6.0f} vehicles/h/lane")
    print(f"6G-class vs measured-5G capacity gain: {gain:.2f}x")


def test_rrc_cold_start_tax(benchmark):
    def cold_start_costs():
        rng = RngRegistry(11).stream("rrc.bench")
        machine = RrcStateMachine(RadioConfig.nr_5g())
        idle = np.mean([machine.mean_wakeup_cost_s(RrcState.IDLE)])
        inactive = machine.mean_wakeup_cost_s(RrcState.INACTIVE)
        sampled = [RrcStateMachine(RadioConfig.nr_5g()).wakeup_cost_s(
            0.0, rng) for _ in range(200)]
        return float(idle), float(inactive), float(np.mean(sampled))

    idle, inactive, sampled_mean = benchmark(cold_start_costs)
    assert inactive < idle
    assert sampled_mean == pytest.approx(idle, rel=0.25)
    # The cold tax alone exceeds the AR budget on 5G: events must keep
    # the connection warm (or pay it).
    assert idle > units.ms(20.0)
    print(f"\nRRC wake-up tax: idle {units.to_ms(idle):.1f} ms, "
          f"inactive {units.to_ms(inactive):.1f} ms — the idle path "
          f"alone exceeds the 20 ms AR budget")
