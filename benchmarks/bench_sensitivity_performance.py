"""Calibration sensitivity + hot-path performance benches.

Sensitivity: perturbs each calibrated knob by +20 % and reports the
elasticity of the headline mean RTL — evidence the reproduction's
result is carried by mechanisms, not by a knife-edge fit (all
elasticities < 1, spread across knobs).

Performance: the vectorised hot paths the campaign leans on, timed so
regressions show up (the repository's optimisation discipline follows
the make-it-work / measure / vectorise workflow).
"""

import numpy as np
import pytest

from repro.core import SensitivityAnalysis
from repro.geo.coords import haversine, haversine_matrix
from repro.sim import RngRegistry, SeriesMonitor


def test_sensitivity_elasticities(benchmark):
    analysis = SensitivityAnalysis(seed=42, mean_positions_per_cell=2.0)

    def compute():
        return analysis.elasticities(scale=1.2)

    elasticities = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert all(-0.1 < v < 1.5 for v in elasticities.values())
    # Sensitivity is *distributed*: at least three knobs matter (>0.1).
    assert sum(1 for v in elasticities.values() if v > 0.1) >= 3

    print("\nmean-RTL elasticity per calibrated knob (+20% perturbation):")
    for knob, value in sorted(elasticities.items(),
                              key=lambda kv: -abs(kv[1])):
        print(f"  {knob}: {value:+.2f}")


def test_perf_haversine_matrix(benchmark):
    """Vectorised pairwise distances: the coverage/mobility hot path."""
    rng = np.random.default_rng(5)
    lats = rng.uniform(46.0, 48.0, 500)
    lons = rng.uniform(13.0, 17.0, 500)

    def pairwise():
        return haversine_matrix(lats[:, None], lons[:, None],
                                lats[None, :], lons[None, :])

    matrix = benchmark(pairwise)
    assert matrix.shape == (500, 500)
    # spot-check against the scalar implementation
    assert matrix[3, 7] == pytest.approx(
        haversine(lats[3], lons[3], lats[7], lons[7]), rel=1e-12)


def test_perf_series_monitor_ingest(benchmark):
    """Amortised-growth sample ingestion (campaign datasets)."""
    times = np.arange(100_000, dtype=float)
    values = np.random.default_rng(7).random(100_000)

    def ingest():
        mon = SeriesMonitor()
        mon.extend(times, values)
        return mon.summary()

    summary = benchmark(ingest)
    assert summary.count == 100_000


def test_perf_campaign_sample_rate(benchmark, scenario):
    """End-to-end measurement throughput: one full RTT sample through
    radio + core + policy-routed internet."""
    from repro.geo.grid import CellId
    campaign = scenario.campaign(2.0)
    cell = CellId.from_label("C2")
    position = scenario.grid.cell_center(cell)

    def one_sample():
        return campaign.sample_rtt(position, cell, "probe-uni")

    rtt = benchmark(one_sample)
    assert rtt > 0.02
