"""Section V-A — local peering optimization.

Paper claims reproduced:

* local peering collapses the multi-country detour to a metro hop
  (the Gupta et al. pattern: IXP peering shrinking 300+ ms paths);
* round-trip latency approaches **~1 ms** (Horvath [3]);
* the AS path drops from six systems to two.

Timed work: the full what-if — IXP creation, peering session, BGP
re-convergence, re-trace.
"""

import pytest

from repro import units
from repro.core import KlagenfurtScenario, LocalPeeringExperiment


def test_local_peering_experiment(benchmark):
    def run_experiment():
        scenario = KlagenfurtScenario(seed=42)
        return LocalPeeringExperiment(scenario).run()

    outcome = benchmark(run_experiment)

    assert outcome.detour_eliminated
    assert outcome.after_rtt_s < units.ms(1.5)       # paper: ~1 ms
    assert outcome.before_rtt_s > units.ms(55.0)
    assert len(outcome.before_as_path) == 6
    assert len(outcome.after_as_path) == 2
    assert outcome.before_path_km > 2000.0
    assert outcome.after_path_km < 20.0

    print(f"\npaper:    detour removal; RTT down to ~1 ms")
    print(f"measured: {units.to_ms(outcome.before_rtt_s):.1f} ms / "
          f"{outcome.before_path_km:.0f} km  ->  "
          f"{units.to_ms(outcome.after_rtt_s):.2f} ms / "
          f"{outcome.after_path_km:.1f} km "
          f"({outcome.rtt_reduction_factor:.0f}x)")
