"""Section IV-C — the Fezeu et al. [22] PHY latency cross-check.

Paper quote: the 5G mmWave system "transmitted 4.4% of packets in under
1 ms and 22.36% in under 3 ms", with the application layer adding
~35 ms on average.

Reproduced with an FR2 (mmWave) downlink at a congested operating
point.  The <1 ms checkpoint matches (4-5 %); the <3 ms checkpoint
lands at ~28 % versus the paper's 22.36 % — same shape, slightly
heavier mid-mass, because an exponential buffer tail cannot fully mimic
mmWave beam-failure bimodality.  Documented in EXPERIMENTS.md.

Timed work: sampling the 20k-packet latency distribution.
"""

import numpy as np
import pytest

from repro import units
from repro.ran import (
    AirInterface,
    Band,
    ChannelModel,
    Generation,
    Numerology,
    RadioConfig,
)
from repro.sim import RngRegistry


def fezeu_config() -> RadioConfig:
    """The congested mmWave operating point (see module docstring)."""
    return RadioConfig(
        generation=Generation.FIVE_G,
        numerology=Numerology(3),         # FR2: 120 kHz SCS
        band=Band.FR2,
        sr_period_slots=8,
        grant_delay_slots=3,
        harq_rtt_slots=8,
        target_bler=0.1,
        max_harq_retx=3,
        configured_grant=False,
        processing_base_s=0.5e-3,
        buffer_service_s=3e-3,
    )


def test_phy_latency_distribution(benchmark):
    cfg = fezeu_config()
    air = AirInterface(cfg, ChannelModel(cfg.carrier_frequency_hz,
                                         antenna_gain_db=25.0))

    def sample_distribution():
        rng = RngRegistry(3).stream("fezeu")
        return np.array([air.sample_downlink(rng, load=0.82, sinr_db=9.5)
                         for _ in range(20_000)])

    samples = benchmark(sample_distribution)

    under_1ms = float((samples < units.ms(1.0)).mean())
    under_3ms = float((samples < units.ms(3.0)).mean())
    assert under_1ms == pytest.approx(0.044, abs=0.02)
    assert 0.18 < under_3ms < 0.35

    print(f"\npaper:    4.40% of packets < 1 ms, 22.36% < 3 ms")
    print(f"measured: {100 * under_1ms:.2f}% < 1 ms, "
          f"{100 * under_3ms:.2f}% < 3 ms")


def test_application_layer_adds_35ms(evaluation):
    """Fezeu: 'the application layer added 35 ms' on average.  In our
    campaign the non-PHY share (core + internet + peer legs) of the
    mobile mean plays that role — check it sits in the tens of ms."""
    cfg = RadioConfig.nr_5g()
    air = AirInterface(cfg, ChannelModel(cfg.carrier_frequency_hz,
                                         antenna_gain_db=25.0))
    own_air = air.mean_rtt(load=0.67, sinr_db=15.0)
    beyond_air = evaluation.gap.mobile_mean_s - own_air
    assert units.ms(25.0) < beyond_air < units.ms(60.0)
