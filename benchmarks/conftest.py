"""Shared fixtures for the benchmark harness.

The drive-test campaign is expensive relative to the analytical
benches, so the Section IV artifacts are computed once per session and
shared; benches that need to *time* campaign execution run their own
smaller campaigns inside the benchmark loop.
"""

import pytest

from repro.core import InfrastructureEvaluation


@pytest.fixture(scope="session")
def evaluation():
    """The full Section IV evaluation at the default seed."""
    return InfrastructureEvaluation(seed=42).run()


@pytest.fixture(scope="session")
def scenario(evaluation):
    return evaluation.scenario
