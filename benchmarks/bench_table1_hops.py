"""Table I — networking hops for a local service request.

Paper values reproduced exactly:

* **10 hops** from the C2 mobile node to the university probe (E3);
* the same operators in the same order (private gateway, DataPacket,
  CDN77, zetservers @ peering.cz, zet.net/amanet, as39912 at the
  Vienna IX, two ascus.at hops, the probe);
* total RTL around **65 ms** for endpoints < 5 km apart.

Timed work: BGP route resolution + hop-by-hop trace.
"""

import pytest

from repro import units
from repro.net import traceroute

PAPER_HOPS = [
    "10.12.128.1",
    "unn-37-19-223-61.datapacket.com [37.19.223.61]",
    "vl204.vie-itx1-core-2.cdn77.com [185.156.45.138]",
    "zetservers.peering.cz [185.0.20.31]",
    "vie-dr2-cr1.zet.net [103.246.249.33]",
    "amanet-cust.zet.net [185.104.63.33]",
    "ae2-97.mx204-1.ix.vie.at.as39912.net [185.211.219.155]",
    "003-228-016-195.ascus.at [195.16.228.3]",
    "180-246-016-195.ascus.at [195.16.246.180]",
    "195.140.139.133",
]


def test_table1_trace(benchmark, scenario):
    def trace():
        scenario.routes._cache.clear()   # time the uncached resolution
        route = scenario.routes.route("ue-c2", "probe-uni")
        return traceroute(scenario.topology, route)

    result = benchmark(trace)

    assert result.hop_count == 10
    assert [h.label for h in result.hops] == PAPER_HOPS
    assert units.ms(55.0) < result.total_rtt_s < units.ms(75.0)

    print("\n" + result.render_table(
        title="NETWORKING HOPS FOR LOCAL SERVICE REQUEST"))
    print(f"\npaper:    10 hops, 65 ms RTL")
    print(f"measured: {result.hop_count} hops, "
          f"{units.to_ms(result.total_rtt_s):.0f} ms RTL")
