"""Section V-C — end-to-end slicing and hypervisor placement.

Paper claims reproduced:

* slice isolation protects URLLC queueing under eMBB pressure, with a
  crossover at light aggregate load (isolation costs capacity there);
* hypervisor placement objectives trade off: latency-optimal placement
  has the worst backup distance, resilience-optimal bounds it, and
  load-balanced placement caps per-site tenants ([41], [42], [43]).

Timed work: the slicing sweep and a k=3 placement comparison.
"""

import pytest

from repro import units
from repro.cn import PlacementObjective
from repro.core import HypervisorPlacementStudy, SlicingStudy


def test_slicing_isolation(benchmark):
    def run_sweep():
        study = SlicingStudy()
        return study.sweep_embb_load(
            [units.gbps(g) for g in (1.0, 3.0, 5.0, 6.5, 7.6)])

    sweep = benchmark(run_sweep)

    factors = [outcome.improvement_factor for _, outcome in sweep]
    # Crossover: isolation loses at light load, wins under pressure.
    assert factors[0] < 1.0
    assert factors[-1] > 2.0
    assert all(a <= b + 1e-9 for a, b in zip(factors, factors[1:]))

    print("\neMBB load sweep (URLLC queueing, isolated vs shared):")
    for (load, outcome), factor in zip(sweep, factors):
        print(f"  eMBB {load / 1e9:.1f} Gbps: "
              f"isolated {outcome.isolated_wait_s * 1e6:.1f} us, "
              f"shared {outcome.shared_wait_s * 1e6:.1f} us "
              f"({factor:.2f}x)")


def test_hypervisor_placement_objectives(benchmark):
    study = HypervisorPlacementStudy()

    def compare():
        return study.compare(k=3)

    results = benchmark(compare)

    latency = results[PlacementObjective.LATENCY.value]
    resilience = results[PlacementObjective.RESILIENCE.value]
    balance = results[PlacementObjective.LOAD_BALANCE.value]
    assert resilience.worst_backup_latency_s <= \
        latency.worst_backup_latency_s + 1e-12
    assert balance.max_tenants_per_site <= latency.max_tenants_per_site

    print("\nhypervisor placement (k=3):")
    for name, result in results.items():
        print(f"  {name}: worst latency "
              f"{units.to_ms(result.worst_latency_s):.2f} ms, "
              f"worst backup "
              f"{units.to_ms(result.worst_backup_latency_s):.2f} ms, "
              f"max tenants/site {result.max_tenants_per_site}")


def test_hypervisor_latency_vs_k(benchmark):
    study = HypervisorPlacementStudy()
    curve = benchmark(study.latency_vs_k, [1, 2, 3, 4, 5])
    values = [v for _, v in curve]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
