"""Section V-B — SmartNIC-offloaded UPF (Jain et al. [32], [33]).

Paper claims reproduced exactly (they are the published factors):

* throughput **doubles** (2x);
* packet-processing latency drops by a factor of **3.75**;
* rule-table growth stops hurting lookup latency (match-action tables
  versus linear scan).

Timed work: per-packet processing through both data planes.
"""

import pytest

from repro import units
from repro.cn import LATENCY_FACTOR, THROUGHPUT_GAIN, UserPlaneFunction, offload
from repro.geo import VIENNA
from repro.sim import RngRegistry


@pytest.fixture
def host_upf():
    return UserPlaneFunction(name="upf-host", location=VIENNA,
                             rule_count=30_000, load=0.4)


def test_smartnic_factors(host_upf):
    nic = offload(host_upf)
    assert nic.throughput_bps / host_upf.throughput_bps == pytest.approx(
        THROUGHPUT_GAIN)
    host_proc = host_upf.lookup_s() + host_upf.pipeline_s
    nic_proc = nic.lookup_s() + nic.pipeline_s
    assert host_proc / nic_proc == pytest.approx(LATENCY_FACTOR)
    print(f"\npaper:    2x throughput, 3.75x lower processing latency")
    print(f"measured: {nic.throughput_bps / host_upf.throughput_bps:.2f}x "
          f"throughput, {host_proc / nic_proc:.2f}x latency")


def test_host_path_packet_processing(benchmark, host_upf):
    rng = RngRegistry(3).stream("nic.host")
    latency = benchmark(host_upf.sample_latency_s, rng)
    assert latency > 0


def test_smartnic_path_packet_processing(benchmark, host_upf):
    nic = offload(host_upf)
    rng = RngRegistry(3).stream("nic.off")
    latency = benchmark(nic.sample_latency_s, rng)
    assert latency > 0


def test_offload_beats_host_at_scale(host_upf):
    """Mean in-UPF latency comparison at identical offered load."""
    nic = offload(host_upf)
    assert nic.mean_latency_s() < host_upf.mean_latency_s() / 2.0


def test_rule_count_sensitivity(host_upf):
    """Linear-scan lookup suffers with table growth; the offloaded
    cached path does not."""
    small, big = host_upf.with_rules(1_000), host_upf.with_rules(100_000)
    assert big.lookup_s() > 50 * small.lookup_s()
    assert big.lookup_s(cached=True) == small.lookup_s(cached=True)
