"""Section III — the application requirements analysis.

Paper claims reproduced:

* AR needs motion-to-photon below 20 ms; 60 FPS video implies a
  16.6 ms frame interval;
* IoT messaging protocols add **5-8 ms**;
* 6G targets: 100 us air latency (10x below 5G's 1 ms), 1 Tbps,
  ~10^6 devices/km^2;
* the portfolio verdict: 5G fails remote surgery and massive IoT;
  6G satisfies the full portfolio.

Timed work: judging the whole application portfolio against both
generations.
"""

import pytest

from repro import units
from repro.apps import (
    VideoStreamConfig,
    all_profiles,
    ar_gaming,
    overhead_band_s,
)
from repro.core import (
    FIVE_G_CAPABILITY,
    SIX_G_CAPABILITY,
    RequirementsAnalysis,
)


def test_requirements_portfolio(benchmark):
    def judge_portfolio():
        profiles = all_profiles()
        return {
            "5G": RequirementsAnalysis(FIVE_G_CAPABILITY).judge_all(
                profiles),
            "6G": RequirementsAnalysis(SIX_G_CAPABILITY).judge_all(
                profiles),
        }

    verdicts = benchmark(judge_portfolio)

    failed_5g = {v.application for v in verdicts["5G"] if not v.satisfied}
    failed_6g = {v.application for v in verdicts["6G"] if not v.satisfied}
    assert "remote-surgery" in failed_5g
    assert "massive-iot" in failed_5g
    assert failed_6g == set()

    print(f"\n5G fails: {sorted(failed_5g)}; 6G fails: none")


def test_frame_interval_16_6ms():
    assert VideoStreamConfig(fps=60.0).frame_interval_s == pytest.approx(
        units.ms(16.6), rel=0.01)


def test_iot_protocol_overhead_band():
    lo, hi = overhead_band_s()
    assert lo == pytest.approx(units.ms(5.0))
    assert hi == pytest.approx(units.ms(8.0))
    print(f"\nIoT protocol overhead: {units.to_ms(lo):.1f}-"
          f"{units.to_ms(hi):.1f} ms (paper: 5-8 ms)")


def test_6g_capability_targets():
    assert SIX_G_CAPABILITY.air_latency_s == pytest.approx(units.us(100.0))
    assert FIVE_G_CAPABILITY.air_latency_s / \
        SIX_G_CAPABILITY.air_latency_s == pytest.approx(10.0)
    assert SIX_G_CAPABILITY.peak_rate_bps == pytest.approx(units.tbps(1.0))
    assert SIX_G_CAPABILITY.device_density_per_km2 / \
        FIVE_G_CAPABILITY.device_density_per_km2 == pytest.approx(10.0)


def test_ar_budget_is_20ms():
    assert ar_gaming().rtt_budget_s == pytest.approx(units.ms(20.0))
