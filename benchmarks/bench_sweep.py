"""Batched-sweep benchmark — machine-readable perf tracking.

Times a 100-run campaign-only sweep (sampling-layer axes only, so
every run shares one ``build_key``) through the serial backend (one
full build + evaluation per run) and the batched two-phase backend
(one shared build, per-run sampling with block sharing), then writes
``BENCH_sweep.json`` at the repo root so the sweep-throughput
trajectory is tracked in-repo.  CI's ``bench-smoke`` job re-runs this
and fails when batched sweep throughput regresses past 2x the
committed baseline.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py
    PYTHONPATH=src python benchmarks/bench_sweep.py --check BENCH_sweep.json

or via pytest (prints, writes nothing)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"

SCENARIO = "klagenfurt"
SEED = 42
DENSITY = 2.0
#: CI fails when batched runs/s falls below baseline by this factor.
REGRESSION_FACTOR = 2.0


def _sweep(batch_size: int):
    from repro.fleet import SweepAxis, SweepSpec
    from repro.scenarios import get

    # Sampling-layer axes only — every run shares one build key: a
    # single-cell congestion anchor x the handover interruption window.
    anchors = tuple(0.1 + 0.02 * i for i in range(10))
    interruptions = tuple(30e-3 + 5e-3 * i
                          for i in range(batch_size // 10))
    return SweepSpec(
        bases=(get(SCENARIO),),
        axes=(SweepAxis("campaign.extra_load_anchors.0.1", anchors),
              SweepAxis("campaign.handover_interruption_s",
                        interruptions)),
        seeds=(SEED,),
        density=DENSITY,
    )


def measure(batch_size: int = 100) -> dict:
    from repro.fleet import run_sweep

    sweep = _sweep(batch_size)
    runs = sweep.run_count

    started = time.perf_counter()
    serial = run_sweep(sweep, executor="serial")
    serial_wall_s = time.perf_counter() - started

    started = time.perf_counter()
    batch = run_sweep(sweep, executor="batch")
    batch_wall_s = time.perf_counter() - started

    if [r.to_dict() for r in batch.records] \
            != [r.to_dict() for r in serial.records]:
        raise AssertionError("batch records diverged from serial")

    return {
        "schema": 1,
        "scenario": SCENARIO,
        "seed": SEED,
        "density": DENSITY,
        "batch_size": runs,
        "builds_performed": batch.exec_stats["builds_performed"],
        "builds_reused": batch.exec_stats["builds_reused"],
        "batch_sweep": {
            "wall_s": round(batch_wall_s, 6),
            "runs_per_sec": round(runs / batch_wall_s, 1),
        },
        "serial_reference": {
            "wall_s": round(serial_wall_s, 6),
            "runs_per_sec": round(runs / serial_wall_s, 1),
        },
        "batch_speedup": round(serial_wall_s / batch_wall_s, 2),
    }


def check_regression(results: dict, baseline_path: Path) -> list[str]:
    """Gate failures of ``results`` against a committed baseline.

    The baseline was recorded on a different machine, so raw seconds
    don't compare.  The serial reference sweep runs in the same process
    on the same inputs, so its ratio to the baseline's serial time is a
    clean estimate of machine speed — the gate scales the committed
    batched throughput by it before applying the regression factor.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    machine_scale = (baseline["serial_reference"]["wall_s"]
                     / results["serial_reference"]["wall_s"])
    scaled_baseline = \
        baseline["batch_sweep"]["runs_per_sec"] * machine_scale
    floor = scaled_baseline / REGRESSION_FACTOR
    measured = results["batch_sweep"]["runs_per_sec"]
    if measured < floor:
        failures.append(
            f"batched sweep throughput {measured:.1f} runs/s below "
            f"1/{REGRESSION_FACTOR}x the committed baseline "
            f"({baseline['batch_sweep']['runs_per_sec']:.1f} runs/s, "
            f"scaled to {scaled_baseline:.1f} for this machine's speed)")
    if results["builds_performed"] \
            != baseline["builds_performed"]:
        failures.append(
            f"campaign-only sweep performed "
            f"{results['builds_performed']} builds, expected "
            f"{baseline['builds_performed']}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON results")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate against (exit 1 on "
                             f"a >{REGRESSION_FACTOR}x regression)")
    parser.add_argument("--batch-size", type=int, default=100)
    args = parser.parse_args(argv)

    results = measure(batch_size=args.batch_size)
    print(json.dumps(results, indent=2))
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}", file=sys.stderr)

    if args.check is not None:
        failures = check_regression(results, args.check)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate: ok", file=sys.stderr)
    return 0


# -- pytest entry point ----------------------------------------------------

def test_batched_sweep_beats_serial():
    """One build + block sharing must beat per-run builds by >= 3x."""
    results = measure(batch_size=50)
    print("\n" + json.dumps(results, indent=2))
    assert results["builds_performed"] == 1
    assert results["batch_speedup"] >= 3.0


if __name__ == "__main__":
    sys.exit(main())
