"""Fig. 1 — the grid-segmentation scenario.

Regenerates the evaluation geometry: the 6x7 grid of 1 km cells around
the University of Klagenfurt, 33 of 42 cells traversed (the rest are
low-density border cells), probe in E3, mobile reference in C2.

Timed work: full scenario construction (grid + population + radio +
internet topology + BGP tables + campaign config).
"""

from repro.core import KlagenfurtScenario
from repro.geo.grid import CellId


def test_fig1_scenario_construction(benchmark):
    scenario = benchmark(KlagenfurtScenario, 42)

    # Fig. 1 facts.
    assert scenario.grid.cols == 6 and scenario.grid.rows == 7
    assert scenario.grid.cell_size_m == 1000.0
    assert len(scenario.traversed_cells) == 33
    assert len(scenario.masked_cells) == 9
    for cell in scenario.masked_cells:
        assert scenario.grid.is_border(cell)
    # Reference geometry of Section IV-B.
    probe = scenario.topology.node("probe-uni")
    assert scenario.grid.locate(probe.location) == CellId.from_label("E3")
    c2 = scenario.grid.cell_center(CellId.from_label("C2"))
    assert c2.distance_to(probe.location) < 5_000.0

    print("\nFig. 1 scenario: 6x7 grid, 1 km cells; "
          f"{len(scenario.traversed_cells)} traversed / "
          f"{len(scenario.masked_cells)} masked border cells; "
          "probe in E3, mobile reference in C2 (< 5 km apart)")


def test_fig1_drive_route_covers_traversed_cells(benchmark, scenario):
    def build_route():
        return scenario.drive_route(mean_positions_per_cell=6.0)

    route = benchmark(build_route)
    assert set(route.visit_order) == set(scenario.traversed_cells)
    # Serpentine order: consecutive visited cells are close.
    for a, b in zip(route.visit_order, route.visit_order[1:]):
        assert abs(a.row - b.row) <= 1
