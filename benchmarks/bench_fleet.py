"""Fleet engine — serial vs. parallel execution of a parameter sweep.

Measures the wall-clock of the same 8-variant x 4-seed fleet (both
registered cities x four handover-interruption settings) executed
serially and across a 4-worker process pool, and pins the engine's
core contract: the two executions produce bit-identical run records.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -s
"""

import os
import time

from repro.fleet import SweepAxis, SweepSpec, run_sweep
from repro.scenarios import klagenfurt, skopje

#: Worker count; ``os.cpu_count()`` under-reports in containers with a
#: cgroup CPU quota, so default to the sweep's natural width of 4.
JOBS = int(os.environ.get("FLEET_BENCH_JOBS", "4"))


def make_sweep() -> SweepSpec:
    """8 variants x 4 seeds at light sampling density: 32 runs."""
    return SweepSpec(
        bases=(klagenfurt(), skopje()),
        axes=(SweepAxis("campaign.handover_interruption_s",
                        (30e-3, 45e-3, 60e-3, 75e-3)),),
        seeds=(42, 43, 44, 45),
        density=2.0,
    )


def test_serial_vs_parallel_speedup():
    sweep = make_sweep()
    assert sweep.run_count == 32

    started = time.perf_counter()
    serial = run_sweep(sweep, jobs=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(sweep, jobs=JOBS)
    parallel_s = time.perf_counter() - started

    # The engine's determinism contract: records are a pure function of
    # (spec, seed, density), so the executor must not leak into them.
    assert [r.to_dict() for r in serial.records] == \
        [r.to_dict() for r in parallel.records]

    print(f"\n32-run fleet: serial {serial_s:.2f} s, "
          f"parallel (jobs={JOBS}) {parallel_s:.2f} s "
          f"-> speedup {serial_s / parallel_s:.2f}x")


def test_parallel_overhead_is_bounded():
    """Worker fan-out cost stays small against the useful work."""
    sweep = make_sweep()
    result = run_sweep(sweep, jobs=JOBS)
    busy = sum(result.run_wall_s)
    # Wall time never exceeds doing all the work serially plus a
    # generous pool-startup allowance.
    assert result.wall_s < busy + 10.0
    print(f"\ncumulative run time {busy:.2f} s across {JOBS} workers "
          f"in {result.wall_s:.2f} s wall")
