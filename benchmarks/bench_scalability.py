"""Sections II-C / III-C — scalability: device density 5G vs 6G.

Paper claims reproduced:

* 6G supports on the order of 10x the device density of 5G (hundreds
  of thousands of devices per km^2 and beyond);
* the smart-city aggregate (50,000 intersections) does not fit 5G's
  peak rate but fits 6G's terabit capacity;
* latency degrades with density: the same population loads a 5G cell
  into the queueing knee long before a 6G cell.

Timed work: the capacity search (max supported users) for both
generations.
"""

import pytest

from repro import units
from repro.apps import SmartCityDeployment
from repro.core import FIVE_G_CAPABILITY, SIX_G_CAPABILITY
from repro.ran import AirInterface, CellLoadModel, ChannelModel, RadioConfig

PER_DEVICE_BPS = units.RATE_KBPS * 50.0


def make_model(generation: str):
    if generation == "5G":
        cfg = RadioConfig.nr_5g()
        channel = ChannelModel(cfg.carrier_frequency_hz,
                               antenna_gain_db=25.0, bandwidth_hz=100e6)
    else:
        cfg = RadioConfig.nr_6g()
        channel = ChannelModel(cfg.carrier_frequency_hz,
                               antenna_gain_db=25.0, bandwidth_hz=2e9)
    return cfg, channel, CellLoadModel(channel)


def test_density_capacity_5g_vs_6g(benchmark):
    def capacities():
        out = {}
        for gen in ("5G", "6G"):
            _, _, model = make_model(gen)
            out[gen] = model.max_supported_users(PER_DEVICE_BPS)
        return out

    caps = benchmark(capacities)
    # 6G sustains an order of magnitude more devices.
    assert caps["6G"] / caps["5G"] > 8.0
    assert caps["6G"] > 100_000      # "hundreds of thousands per km^2"
    print(f"\nmax devices per cell at 50 kbps each: "
          f"5G {caps['5G']:,} vs 6G {caps['6G']:,} "
          f"({caps['6G'] / caps['5G']:.0f}x)")


def test_latency_degrades_with_density():
    rows = []
    for gen in ("5G", "6G"):
        cfg, channel, model = make_model(gen)
        air = AirInterface(cfg, channel)
        for devices in (10_000, 50_000, 200_000):
            rho = model.utilisation(devices, PER_DEVICE_BPS)
            rtt = air.mean_rtt(load=min(rho, 0.92), sinr_db=15.0)
            rows.append((gen, devices, rho, rtt))
    by_gen = {}
    for gen, devices, rho, rtt in rows:
        by_gen.setdefault(gen, []).append(rtt)
    # Latency grows with density for 5G; 6G stays flat in this range.
    assert by_gen["5G"][0] < by_gen["5G"][-1]
    assert by_gen["6G"][-1] < units.ms(0.5)
    assert by_gen["5G"][-1] > 10 * by_gen["6G"][-1]


def test_smart_city_fits_6g_not_5g():
    city = SmartCityDeployment()
    assert not city.fits_in(FIVE_G_CAPABILITY.peak_rate_bps)
    assert city.fits_in(SIX_G_CAPABILITY.peak_rate_bps)
