"""Legacy-compatible build entry point.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP-517 editable wheels cannot be built; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""
from setuptools import setup

setup()
